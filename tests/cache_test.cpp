// qsa::cache — the aggregation fast path. Three properties are under test:
//
//  1. the compatibility/cost memos are *bit-transparent*: every composition
//     (QCS and the DFS baselines) and every full grid run produces exactly
//     the same results, counters, series, traces and exported metrics with
//     the caches on as off;
//  2. the TTL'd discovery cache follows the soft-state contract: hits serve
//     the last lookup with zero hops/latency, entries expire at the TTL,
//     and any registration change or peer departure drops the cache;
//  3. staleness within the TTL is caught downstream (selection/admission),
//     never by the cache itself.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "qsa/cache/compose_cache.hpp"
#include "qsa/cache/discovery_cache.hpp"
#include "qsa/core/baselines.hpp"
#include "qsa/harness/grid.hpp"
#include "qsa/obs/export.hpp"
#include "qsa/obs/sink.hpp"
#include "qsa/overlay/chord_ring.hpp"
#include "qsa/qos/satisfy.hpp"
#include "qsa/registry/directory.hpp"
#include "qsa/replica/manager.hpp"
#include "qsa/util/rng.hpp"
#include "qsa/workload/apps.hpp"

namespace qsa {
namespace {

constexpr qos::ParamId kLevel = 0;

qos::QosVector range_vec(double lo, double hi) {
  qos::QosVector v;
  v.set(kLevel, qos::QosValue::range(lo, hi));
  return v;
}

// ------------------------------------------------------------ CompatMemo

TEST(ComposeCache, PairMemoMatchesDirectCheckAndCountsHits) {
  obs::MetricsRegistry reg;
  cache::ComposeCache cc;
  cc.set_metrics(&reg);
  const auto qout = range_vec(50, 60);
  const auto qin_ok = range_vec(0, 100);
  const auto qin_no = range_vec(90, 95);

  EXPECT_EQ(cc.compat.pair(3, qout, 7, qin_ok), qos::satisfies(qout, qin_ok));
  EXPECT_EQ(cc.compat.pair(3, qout, 7, qin_ok), qos::satisfies(qout, qin_ok));
  // The reverse pair is a distinct key (direction matters).
  EXPECT_EQ(cc.compat.pair(7, qout, 3, qin_no), qos::satisfies(qout, qin_no));
  EXPECT_EQ(reg.counter("cache.compat.misses").value, 2u);
  EXPECT_EQ(reg.counter("cache.compat.hits").value, 1u);
}

TEST(ComposeCache, PairMemoSurvivesGrowth) {
  cache::ComposeCache cc;
  const auto qout = range_vec(50, 60);
  const auto qin = range_vec(0, 100);
  // Warm small ids, then force a re-layout with a large id: old verdicts
  // must survive the row copy.
  EXPECT_TRUE(cc.compat.pair(1, qout, 2, qin));
  EXPECT_FALSE(cc.compat.pair(2, range_vec(0, 5), 1, range_vec(90, 95)));
  EXPECT_TRUE(cc.compat.pair(900, qout, 3, qin));
  EXPECT_TRUE(cc.compat.pair(1, qout, 2, qin));
  EXPECT_FALSE(cc.compat.pair(2, range_vec(0, 5), 1, range_vec(90, 95)));
}

TEST(ComposeCache, SinkMemoCorrectAcrossRequirementChurn) {
  cache::ComposeCache cc;
  const auto qout = range_vec(50, 60);
  // More distinct requirements than the memo keeps: eviction and
  // recomputation must never change an answer.
  for (int round = 0; round < 2; ++round) {
    for (int r = 0; r < 12; ++r) {
      const auto req = range_vec(5.0 * r, 5.0 * r + 30);
      for (registry::InstanceId i = 0; i < 4; ++i) {
        EXPECT_EQ(cc.compat.sink(i, qout, req), qos::satisfies(qout, req))
            << "requirement " << r << " instance " << i;
      }
    }
  }
}

TEST(ComposeCache, CostTableMatchesScalarize) {
  cache::ComposeCache cc;
  const auto weights = qos::TupleWeights::uniform(2);
  const auto schema = qos::ResourceSchema::paper();
  const qos::ResourceVector r{40, 70};
  const double direct = qos::scalarize(qos::ResourceTuple{r, 300.0}, weights,
                                       schema);
  EXPECT_EQ(cc.costs.cost(5, r, 300.0, weights, schema), direct);
  EXPECT_EQ(cc.costs.cost(5, r, 300.0, weights, schema), direct);
  cc.clear();
  EXPECT_EQ(cc.costs.cost(5, r, 300.0, weights, schema), direct);
}

// -------------------------------------------- composer bit-transparency

/// A random composable catalog: `layers` services, `k` instances each.
struct RandomCatalog {
  registry::ServiceCatalog catalog;
  core::CompositionRequest request;

  RandomCatalog(util::Rng& rng, int layers, int k) {
    for (int l = 0; l < layers; ++l) {
      const auto svc = catalog.add_service("svc");
      std::vector<registry::InstanceId> layer;
      for (int i = 0; i < k; ++i) {
        registry::ServiceInstance inst;
        inst.service = svc;
        if (l > 0) {
          const double lo = rng.uniform(0, 50);
          inst.qin.set(kLevel, qos::QosValue::range(lo, lo + rng.uniform(20, 60)));
        }
        const double lo = rng.uniform(10, 80);
        inst.qout.set(kLevel, qos::QosValue::range(lo, lo + 10));
        inst.resources =
            qos::ResourceVector{rng.uniform(5, 100), rng.uniform(5, 100)};
        inst.bandwidth_kbps = rng.uniform(40, 400);
        layer.push_back(catalog.add_instance(inst));
      }
      request.candidates.push_back(std::move(layer));
    }
  }
};

void expect_same(const core::CompositionResult& a,
                 const core::CompositionResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.instances, b.instances);
  EXPECT_EQ(a.cost, b.cost);  // bit-identical, not just near
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.edges_examined, b.edges_examined);
  EXPECT_EQ(a.nodes_checked, b.nodes_checked);
}

TEST(ComposeCache, QcsBitIdenticalCachedVsUncached) {
  util::Rng rng(41);
  for (int trial = 0; trial < 25; ++trial) {
    const int layers = 2 + static_cast<int>(rng.index(4));
    const int k = 2 + static_cast<int>(rng.index(10));
    RandomCatalog setup(rng, layers, k);
    core::QcsComposer plain(setup.catalog, qos::TupleWeights::uniform(2),
                            qos::ResourceSchema::paper());
    core::QcsComposer cached(setup.catalog, qos::TupleWeights::uniform(2),
                             qos::ResourceSchema::paper());
    cache::ComposeCache cc;
    cached.set_cache(&cc);
    // Several requirements per catalog so the sink memo sees variety and
    // repeats (the second pass over each requirement is all memo hits).
    for (int r = 0; r < 6; ++r) {
      auto req = setup.request;
      const double lo = rng.uniform(0, 60);
      req.requirement = range_vec(lo, lo + 40);
      expect_same(cached.compose(req), plain.compose(req));
      expect_same(cached.compose(req), plain.compose(req));
    }
  }
}

TEST(ComposeCache, DfsBaselinesBitIdenticalCachedVsUncached) {
  util::Rng rng(43);
  for (int trial = 0; trial < 15; ++trial) {
    const int layers = 2 + static_cast<int>(rng.index(3));
    const int k = 2 + static_cast<int>(rng.index(8));
    RandomCatalog setup(rng, layers, k);
    core::QcsComposer plain(setup.catalog, qos::TupleWeights::uniform(2),
                            qos::ResourceSchema::paper());
    core::QcsComposer cached(setup.catalog, qos::TupleWeights::uniform(2),
                             qos::ResourceSchema::paper());
    cache::ComposeCache cc;
    cached.set_cache(&cc);
    auto req = setup.request;
    req.requirement = range_vec(0, 100);
    expect_same(core::compose_first(cached, req),
                core::compose_first(plain, req));
    // Twin RNG streams: the randomized DFS must draw identically, so the
    // memo may not add or remove a single RNG consultation.
    util::Rng rng_a(trial + 1), rng_b(trial + 1);
    expect_same(core::compose_random(cached, req, rng_a),
                core::compose_random(plain, req, rng_b));
  }
}

// --------------------------------------------------------- DiscoveryCache

TEST(DiscoveryCache, DisabledByDefault) {
  cache::DiscoveryCache dc;
  EXPECT_FALSE(dc.enabled());
  dc.store(1, {4, 5}, sim::SimTime::zero());
  EXPECT_EQ(dc.find(1, sim::SimTime::zero()), nullptr);
}

TEST(DiscoveryCache, HitWithinTtlExpiryAtTtl) {
  cache::DiscoveryCache dc;
  dc.set_ttl(sim::SimTime::seconds(30));
  dc.store(1, {4, 5}, sim::SimTime::zero());
  const auto* hit = dc.find(1, sim::SimTime::seconds(29));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, (std::vector<registry::InstanceId>{4, 5}));
  // `now + ttl` is already expired (half-open lifetime).
  EXPECT_EQ(dc.find(1, sim::SimTime::seconds(30)), nullptr);
  // The expired entry was dropped, not resurrected.
  EXPECT_EQ(dc.find(1, sim::SimTime::zero()), nullptr);
}

TEST(DiscoveryCache, InvalidationCountsOnlyWhenStateDropped) {
  obs::MetricsRegistry reg;
  cache::DiscoveryCache dc;
  dc.set_ttl(sim::SimTime::seconds(30));
  dc.set_metrics(&reg);
  dc.invalidate();  // empty: no-op
  EXPECT_EQ(reg.counter("cache.discovery.invalidations").value, 0u);
  dc.store(1, {4}, sim::SimTime::zero());
  dc.invalidate();
  dc.invalidate();  // already empty again
  EXPECT_EQ(reg.counter("cache.discovery.invalidations").value, 1u);
  EXPECT_EQ(dc.find(1, sim::SimTime::zero()), nullptr);
}

TEST(DiscoveryCache, DisablingDropsState) {
  cache::DiscoveryCache dc;
  dc.set_ttl(sim::SimTime::seconds(30));
  dc.store(1, {4}, sim::SimTime::zero());
  dc.set_ttl(sim::SimTime::zero());
  dc.set_ttl(sim::SimTime::seconds(30));
  EXPECT_EQ(dc.find(1, sim::SimTime::zero()), nullptr);
}

// ------------------------------------------------- directory integration

struct CachedDirectoryFixture : ::testing::Test {
  void SetUp() override {
    for (net::PeerId p = 0; p < 32; ++p) ring.join(p);
    ring.stabilize_all();
    s0 = catalog.add_service("a");
    i0 = catalog.add_instance(make_instance(s0));
    i1 = catalog.add_instance(make_instance(s0));
  }

  registry::ServiceInstance make_instance(registry::ServiceId svc) {
    registry::ServiceInstance inst;
    inst.service = svc;
    inst.qout = range_vec(10, 20);
    inst.resources = qos::ResourceVector{10, 10};
    inst.bandwidth_kbps = 100;
    return inst;
  }

  overlay::ChordRing ring{1, 3};
  registry::ServiceCatalog catalog;
  registry::ServiceId s0 = 0;
  registry::InstanceId i0 = 0, i1 = 0;
};

TEST_F(CachedDirectoryFixture, HitServesLastLookupWithZeroCost) {
  registry::ServiceDirectory dir(1, ring, catalog);
  dir.set_cache_ttl(sim::SimTime::seconds(30));
  obs::MetricsRegistry reg;
  dir.set_metrics(&reg);
  dir.publish_all();
  net::NetworkModel net(1, net::ProbeClock(sim::SimTime::seconds(30)));

  const auto first = dir.discover(s0, 5, &net, sim::SimTime::zero());
  const auto hit = dir.discover(s0, 5, &net, sim::SimTime::seconds(10));
  EXPECT_EQ(hit.instances, first.instances);
  EXPECT_EQ(hit.hops, 0);
  EXPECT_EQ(hit.latency, sim::SimTime::zero());
  // The overlay was consulted exactly once; the hit recorded no lookup.
  EXPECT_EQ(reg.counter("directory.lookups").value, 1u);
  EXPECT_EQ(reg.counter("cache.discovery.hits").value, 1u);
  EXPECT_EQ(reg.counter("cache.discovery.misses").value, 1u);
}

TEST_F(CachedDirectoryFixture, EntryExpiresAfterTtl) {
  registry::ServiceDirectory dir(1, ring, catalog);
  dir.set_cache_ttl(sim::SimTime::seconds(30));
  obs::MetricsRegistry reg;
  dir.set_metrics(&reg);
  dir.publish_all();

  const auto first = dir.discover(s0, 5, nullptr, sim::SimTime::zero());
  const auto again = dir.discover(s0, 5, nullptr, sim::SimTime::minutes(5));
  EXPECT_EQ(again.instances, first.instances);  // re-looked-up, same answer
  EXPECT_EQ(reg.counter("cache.discovery.misses").value, 2u);
  EXPECT_EQ(reg.counter("directory.lookups").value, 2u);
}

TEST_F(CachedDirectoryFixture, RepublishAndUnpublishInvalidate) {
  registry::ServiceDirectory dir(1, ring, catalog);
  dir.set_cache_ttl(sim::SimTime::minutes(10));
  obs::MetricsRegistry reg;
  dir.set_metrics(&reg);
  dir.publish_all();

  (void)dir.discover(s0, 5, nullptr, sim::SimTime::zero());
  dir.publish_all();  // the periodic republish: one invalidation, not N
  EXPECT_EQ(reg.counter("cache.discovery.invalidations").value, 1u);

  // After an unpublish the next discover must see the removal immediately —
  // within the TTL — because the registration change dropped the cache.
  (void)dir.discover(s0, 5, nullptr, sim::SimTime::seconds(1));
  dir.unpublish(i0);
  const auto d = dir.discover(s0, 5, nullptr, sim::SimTime::seconds(2));
  EXPECT_EQ(d.instances, (std::vector<registry::InstanceId>{i1}));
  EXPECT_EQ(reg.counter("cache.discovery.invalidations").value, 2u);
}

TEST_F(CachedDirectoryFixture, PublishInvalidatesOnlyItsOwnService) {
  // The hit-rate regression pinning scoped invalidation: a single-service
  // publish/unpublish must not evict other services' warm entries (it used
  // to drop the whole cache, costing every service a re-route).
  const registry::ServiceId s1 = catalog.add_service("b");
  const registry::InstanceId j0 = catalog.add_instance(make_instance(s1));
  registry::ServiceDirectory dir(1, ring, catalog);
  dir.set_cache_ttl(sim::SimTime::minutes(10));
  obs::MetricsRegistry reg;
  dir.set_metrics(&reg);
  dir.publish_all();

  (void)dir.discover(s0, 5, nullptr, sim::SimTime::zero());
  (void)dir.discover(s1, 5, nullptr, sim::SimTime::zero());
  EXPECT_EQ(reg.counter("cache.discovery.misses").value, 2u);

  // Registration churn on s0 only: s1's entry stays warm.
  dir.unpublish(i1);
  dir.publish(i1);
  const auto warm = dir.discover(s1, 5, nullptr, sim::SimTime::seconds(1));
  EXPECT_EQ(warm.instances, (std::vector<registry::InstanceId>{j0}));
  EXPECT_EQ(warm.hops, 0);
  EXPECT_EQ(reg.counter("cache.discovery.hits").value, 1u);
  EXPECT_EQ(reg.counter("directory.lookups").value, 2u);  // no re-route of s1

  // s0's entry did drop: its next discover routes again and sees i1 back.
  const auto cold = dir.discover(s0, 5, nullptr, sim::SimTime::seconds(2));
  EXPECT_EQ(cold.instances, (std::vector<registry::InstanceId>{i0, i1}));
  EXPECT_EQ(reg.counter("cache.discovery.misses").value, 3u);
  EXPECT_EQ(reg.counter("directory.lookups").value, 3u);
}

TEST_F(CachedDirectoryFixture, DisabledCacheRegistersNoCacheMetrics) {
  registry::ServiceDirectory dir(1, ring, catalog);
  obs::MetricsRegistry reg;
  dir.set_metrics(&reg);  // TTL off: cache.* names must not appear
  dir.publish_all();
  (void)dir.discover(s0, 5);
  (void)dir.discover(s0, 5);
  EXPECT_EQ(reg.counters().count("cache.discovery.hits"), 0u);
  EXPECT_EQ(reg.counters().count("cache.discovery.misses"), 0u);
  EXPECT_EQ(reg.counter("directory.lookups").value, 2u);
}

TEST_F(CachedDirectoryFixture, ReplicaPublishInvalidatesCachedDiscovery) {
  registry::ServiceDirectory dir(1, ring, catalog);
  dir.set_cache_ttl(sim::SimTime::minutes(10));
  obs::MetricsRegistry reg;
  dir.set_metrics(&reg);
  dir.publish_all();

  // A minimal replication setup over the same directory: one provider,
  // pressure gate off so pure demand trips the clone.
  registry::PlacementMap placement;
  net::PeerTable peers(qos::ResourceSchema::paper(), net::ProbeClock());
  net::NetworkModel net(1, net::ProbeClock());
  std::vector<net::PeerId> pid;
  for (int p = 0; p < 16; ++p) {
    pid.push_back(peers.add_peer(qos::ResourceVector{500, 500},
                                 sim::SimTime::minutes(-100)));
  }
  placement.add_provider(i0, pid[0]);
  replica::ReplicaConfig cfg;
  cfg.enabled = true;
  cfg.threshold = 2;
  cfg.cooldown = sim::SimTime::minutes(1);
  cfg.min_pool_pressure = 0;
  replica::ReplicaManager mgr(7, cfg, catalog, placement, dir, peers, net,
                              qos::TupleWeights::uniform(2),
                              qos::ResourceSchema::paper());

  (void)dir.discover(s0, 5, nullptr, sim::SimTime::zero());
  (void)dir.discover(s0, 5, nullptr, sim::SimTime::seconds(1));
  EXPECT_EQ(reg.counter("cache.discovery.hits").value, 1u);

  // The replica lands mid-TTL; its publish must drop the cached candidate
  // list exactly like any other registration change...
  const registry::InstanceId insts[] = {i0};
  mgr.on_selection_failure(insts, sim::SimTime::seconds(2));
  ASSERT_EQ(mgr.stats().created, 1u);
  EXPECT_EQ(reg.counter("cache.discovery.invalidations").value, 1u);

  // ...so the next discover routes through the overlay again instead of
  // serving the pre-replica state for the rest of the TTL.
  (void)dir.discover(s0, 5, nullptr, sim::SimTime::seconds(3));
  EXPECT_EQ(reg.counter("cache.discovery.misses").value, 2u);
  EXPECT_EQ(reg.counter("directory.lookups").value, 2u);

  // Retirement narrows the pool: the cache drops again.
  (void)dir.discover(s0, 5, nullptr, sim::SimTime::seconds(4));
  mgr.sweep(sim::SimTime::minutes(30));
  ASSERT_EQ(mgr.stats().retired, 1u);
  EXPECT_EQ(reg.counter("cache.discovery.invalidations").value, 2u);
}

// ------------------------------------------------ grid-level transparency

harness::GridConfig grid_config(std::uint64_t seed,
                                harness::AlgorithmKind kind) {
  harness::GridConfig c;
  c.seed = seed;
  c.peers = 200;
  c.min_providers = 10;
  c.max_providers = 20;
  c.apps.applications = 5;
  c.requests.rate_per_min = 30;
  c.churn.events_per_min = 6;
  c.admission_retries = 1;
  c.horizon = sim::SimTime::minutes(10);
  c.sample_period = sim::SimTime::minutes(2);
  c.algorithm = kind;
  c.observe = true;
  return c;
}

struct RunArtifacts {
  harness::GridResult result;
  std::string trace;
  std::string metrics_csv;
};

RunArtifacts run_grid(const harness::GridConfig& cfg) {
  harness::GridSimulation grid(cfg);
  obs::StringSpanSink sink;  // spans stream out as requests finish
  grid.set_span_sink(&sink);
  RunArtifacts a;
  a.result = grid.run();
  a.trace = sink.str();
  a.metrics_csv = obs::metrics_csv(*grid.metrics());
  return a;
}

/// Drops the `cache.*` rows — the only lines a cached run may legitimately
/// add to the metrics export.
std::string strip_cache_rows(const std::string& csv) {
  std::istringstream in(csv);
  std::string out, line;
  while (std::getline(in, line)) {
    const auto comma = line.find(',');
    if (comma != std::string::npos &&
        line.compare(comma + 1, 6, "cache.") == 0) {
      continue;
    }
    out += line;
    out += '\n';
  }
  return out;
}

class CacheTransparency
    : public ::testing::TestWithParam<harness::AlgorithmKind> {};

TEST_P(CacheTransparency, GridRunsBitIdenticalCachesOnVsOff) {
  for (const std::uint64_t seed : {11u, 23u, 37u}) {
    auto on = grid_config(seed, GetParam());
    auto off = on;
    off.compose_caches = false;
    const auto a = run_grid(on);
    const auto b = run_grid(off);

    EXPECT_EQ(a.result.requests, b.result.requests);
    EXPECT_EQ(a.result.successes, b.result.successes);
    EXPECT_EQ(a.result.failures_discovery, b.result.failures_discovery);
    EXPECT_EQ(a.result.failures_composition, b.result.failures_composition);
    EXPECT_EQ(a.result.failures_selection, b.result.failures_selection);
    EXPECT_EQ(a.result.failures_admission, b.result.failures_admission);
    EXPECT_EQ(a.result.failures_departure, b.result.failures_departure);
    EXPECT_EQ(a.result.lookup_hops, b.result.lookup_hops);
    EXPECT_EQ(a.result.setup_latency_ms, b.result.setup_latency_ms);
    EXPECT_EQ(a.result.notification_messages, b.result.notification_messages);
    EXPECT_EQ(a.result.random_fallback_hops, b.result.random_fallback_hops);
    EXPECT_EQ(a.result.avg_composition_cost, b.result.avg_composition_cost);
    EXPECT_EQ(a.result.counters.all(), b.result.counters.all());
    ASSERT_EQ(a.result.series.size(), b.result.series.size());
    for (std::size_t i = 0; i < a.result.series.size(); ++i) {
      EXPECT_EQ(a.result.series.samples()[i].value,
                b.result.series.samples()[i].value);
    }
    // Exported artifacts byte-identical, modulo the cache.* counter rows
    // the cached run adds.
    EXPECT_EQ(a.trace, b.trace) << "seed " << seed;
    EXPECT_EQ(strip_cache_rows(a.metrics_csv), b.metrics_csv) << "seed "
                                                              << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CacheTransparency,
                         ::testing::Values(harness::AlgorithmKind::kQsa,
                                           harness::AlgorithmKind::kRandom,
                                           harness::AlgorithmKind::kFixed),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ------------------------------------------- grid-level discovery cache

core::ServiceRequest first_app_request(harness::GridSimulation& grid) {
  const auto& app = grid.apps().apps()[0];
  core::ServiceRequest req;
  req.requester = grid.peers().alive_ids()[0];
  req.abstract_path = app.path;
  req.requirement =
      workload::requirement_for(workload::QosLevel::kLow, grid.universe());
  req.session_duration = sim::SimTime::minutes(5);
  return req;
}

TEST(GridDiscoveryCache, SecondRequestServedFromCache) {
  auto cfg = grid_config(11, harness::AlgorithmKind::kQsa);
  cfg.discovery_cache_ttl = sim::SimTime::minutes(10);
  harness::GridSimulation grid(cfg);
  const auto req = first_app_request(grid);
  const auto first = grid.submit_request(req);
  ASSERT_TRUE(first.ok());
  const auto second = grid.submit_request(req);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.lookup_hops, 0);
  EXPECT_EQ(second.setup_latency, sim::SimTime::zero());
  EXPECT_EQ(second.instances, first.instances);
  const auto path_len = req.abstract_path.size();
  EXPECT_EQ(grid.metrics()->counter("cache.discovery.misses").value, path_len);
  EXPECT_EQ(grid.metrics()->counter("cache.discovery.hits").value, path_len);
}

TEST(GridDiscoveryCache, TtlExpiresInSimTime) {
  auto cfg = grid_config(11, harness::AlgorithmKind::kQsa);
  cfg.discovery_cache_ttl = sim::SimTime::seconds(30);
  harness::GridSimulation grid(cfg);
  const auto req = first_app_request(grid);
  ASSERT_TRUE(grid.submit_request(req).ok());
  // Advance the simulated clock past the TTL, then re-request: every
  // lookup must route again.
  grid.simulator().schedule_at(sim::SimTime::minutes(1), [] {});
  grid.simulator().run_until(sim::SimTime::minutes(1));
  ASSERT_TRUE(grid.submit_request(req).ok());
  EXPECT_EQ(grid.metrics()->counter("cache.discovery.misses").value,
            2 * req.abstract_path.size());
  EXPECT_EQ(grid.metrics()->counter("cache.discovery.hits").value, 0u);
}

TEST(GridDiscoveryCache, PeerDepartureInvalidates) {
  auto cfg = grid_config(11, harness::AlgorithmKind::kQsa);
  cfg.discovery_cache_ttl = sim::SimTime::minutes(10);
  harness::GridSimulation grid(cfg);
  const auto req = first_app_request(grid);
  ASSERT_TRUE(grid.submit_request(req).ok());
  grid.depart_peer(grid.peers().alive_ids()[7]);
  EXPECT_GE(grid.metrics()->counter("cache.discovery.invalidations").value,
            1u);
  ASSERT_TRUE(grid.submit_request(req).ok());
  EXPECT_EQ(grid.metrics()->counter("cache.discovery.hits").value, 0u);
}

TEST(GridDiscoveryCache, StalenessCaughtAtSelectionNotByCache) {
  auto cfg = grid_config(11, harness::AlgorithmKind::kQsa);
  cfg.discovery_cache_ttl = sim::SimTime::minutes(10);
  harness::GridSimulation grid(cfg);
  const auto req = first_app_request(grid);
  const auto first = grid.submit_request(req);
  ASSERT_TRUE(first.ok());
  // Strip every provider of the first service's instances *without telling
  // the directory* — staleness the invalidation hooks cannot see. The
  // cached discovery still serves the instance list (zero hops); the bogus
  // plan is then rejected by selection, exactly where the paper's
  // soft-state model catches stale knowledge.
  for (const auto inst : grid.catalog().instances_of(req.abstract_path[0])) {
    const auto providers = grid.placement().providers(inst);
    const std::vector<net::PeerId> copy(providers.begin(), providers.end());
    for (const auto p : copy) grid.placement().remove_provider(inst, p);
  }
  const auto stale = grid.submit_request(req);
  EXPECT_FALSE(stale.ok());
  EXPECT_EQ(stale.failure, core::FailureCause::kSelection);
  EXPECT_EQ(stale.lookup_hops, 0);  // served from the (stale) cache
}

}  // namespace
}  // namespace qsa
