#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "qsa/probe/neighbor_table.hpp"
#include "qsa/probe/resolution.hpp"
#include "qsa/probe/snapshot.hpp"

namespace qsa::probe {
namespace {

using net::PeerId;
using net::ProbeClock;
using qos::ResourceVector;
using sim::SimTime;

// ------------------------------------------------------------- snapshots

struct SnapshotFixture : ::testing::Test {
  SnapshotFixture()
      : peers(qos::ResourceSchema::paper(), ProbeClock(SimTime::seconds(30))),
        net(1, ProbeClock(SimTime::seconds(30))) {
    a = peers.add_peer(ResourceVector{500, 500}, SimTime::minutes(-20));
    b = peers.add_peer(ResourceVector{800, 800}, SimTime::minutes(-5));
  }

  net::PeerTable peers;
  net::NetworkModel net;
  PeerId a = 0, b = 0;
};

TEST_F(SnapshotFixture, CapturesAvailabilityAndUptime) {
  const auto s = probe(peers, net, a, b, SimTime::seconds(60));
  EXPECT_TRUE(s.alive);
  EXPECT_EQ(s.available, (ResourceVector{800, 800}));
  // Epoch boundary at t=60: uptime = 60s + 5min.
  EXPECT_EQ(s.uptime, SimTime::seconds(360));
  EXPECT_EQ(s.latency, net.latency(b, a));
  EXPECT_DOUBLE_EQ(s.bandwidth_kbps, net.capacity_kbps(a, b));
}

TEST_F(SnapshotFixture, StaleWithinEpoch) {
  ASSERT_TRUE(peers.try_reserve(b, ResourceVector{300, 300}, SimTime::seconds(40)));
  const auto during = probe(peers, net, a, b, SimTime::seconds(50));
  EXPECT_EQ(during.available, (ResourceVector{800, 800}));  // epoch-1 state
  const auto after = probe(peers, net, a, b, SimTime::seconds(65));
  EXPECT_EQ(after.available, (ResourceVector{500, 500}));
}

TEST_F(SnapshotFixture, DeadPeerReportsNotAliveNextEpoch) {
  peers.remove_peer(b, SimTime::seconds(10));
  const auto during = probe(peers, net, a, b, SimTime::seconds(20));
  EXPECT_TRUE(during.alive);  // died mid-epoch: probers don't know yet
  const auto after = probe(peers, net, a, b, SimTime::seconds(40));
  EXPECT_FALSE(after.alive);
}

// ---------------------------------------------------------- benefit rank

TEST(BenefitRank, PaperOrdering) {
  // 1-hop direct < 1-hop indirect < 2-hop direct < 2-hop indirect < ...
  EXPECT_LT(benefit_rank(1, NeighborKind::kDirect),
            benefit_rank(1, NeighborKind::kIndirect));
  EXPECT_LT(benefit_rank(1, NeighborKind::kIndirect),
            benefit_rank(2, NeighborKind::kDirect));
  EXPECT_LT(benefit_rank(2, NeighborKind::kDirect),
            benefit_rank(2, NeighborKind::kIndirect));
  EXPECT_LT(benefit_rank(2, NeighborKind::kIndirect),
            benefit_rank(3, NeighborKind::kDirect));
}

// --------------------------------------------------------- NeighborTable

TEST(NeighborTable, AddAndKnow) {
  NeighborTable t(10);
  EXPECT_FALSE(t.knows(5, SimTime::zero()));
  EXPECT_TRUE(t.add(5, 1, NeighborKind::kDirect, SimTime::zero(),
                    SimTime::minutes(10)));
  EXPECT_TRUE(t.knows(5, SimTime::zero()));
  EXPECT_EQ(t.size(), 1u);
}

TEST(NeighborTable, EntriesExpire) {
  NeighborTable t(10);
  t.add(5, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(10));
  EXPECT_TRUE(t.knows(5, SimTime::minutes(9)));
  EXPECT_FALSE(t.knows(5, SimTime::minutes(10)));
  EXPECT_FALSE(t.knows(5, SimTime::minutes(11)));
}

TEST(NeighborTable, RefreshExtendsTtl) {
  NeighborTable t(10);
  t.add(5, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(10));
  t.add(5, 1, NeighborKind::kDirect, SimTime::minutes(8), SimTime::minutes(10));
  EXPECT_TRUE(t.knows(5, SimTime::minutes(15)));
  EXPECT_EQ(t.size(), 1u);
}

TEST(NeighborTable, RefreshKeepsBetterRank) {
  NeighborTable t(10);
  t.add(5, 3, NeighborKind::kIndirect, SimTime::zero(), SimTime::minutes(10));
  t.add(5, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(10));
  const auto& e = t.entries().at(5);
  EXPECT_EQ(e.hop, 1);
  EXPECT_EQ(e.kind, NeighborKind::kDirect);
  // A later worse-rank notification does not downgrade it.
  t.add(5, 4, NeighborKind::kIndirect, SimTime::zero(), SimTime::minutes(10));
  EXPECT_EQ(t.entries().at(5).hop, 1);
}

TEST(NeighborTable, BudgetEnforced) {
  NeighborTable t(3);
  for (PeerId p = 0; p < 5; ++p) {
    t.add(p, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(10));
  }
  EXPECT_EQ(t.size(), 3u);
}

TEST(NeighborTable, EvictsLowestBenefitFirst) {
  NeighborTable t(2);
  t.add(1, 3, NeighborKind::kIndirect, SimTime::zero(), SimTime::minutes(10));
  t.add(2, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(10));
  // A 1-hop direct newcomer evicts the 3-hop indirect entry, not peer 2.
  EXPECT_TRUE(t.add(3, 1, NeighborKind::kDirect, SimTime::zero(),
                    SimTime::minutes(10)));
  EXPECT_FALSE(t.knows(1, SimTime::zero()));
  EXPECT_TRUE(t.knows(2, SimTime::zero()));
  EXPECT_TRUE(t.knows(3, SimTime::zero()));
}

TEST(NeighborTable, RejectsWorseThanEverything) {
  NeighborTable t(2);
  t.add(1, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(10));
  t.add(2, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(10));
  EXPECT_FALSE(t.add(3, 4, NeighborKind::kIndirect, SimTime::zero(),
                     SimTime::minutes(10)));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.knows(3, SimTime::zero()));
}

TEST(NeighborTable, ExpiredEntriesAreReusedBeforeEviction) {
  NeighborTable t(2);
  t.add(1, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(1));
  t.add(2, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(60));
  // At t=5 entry 1 is expired; even a low-benefit newcomer may take its slot.
  EXPECT_TRUE(t.add(3, 4, NeighborKind::kIndirect, SimTime::minutes(5),
                    SimTime::minutes(10)));
  EXPECT_TRUE(t.knows(2, SimTime::minutes(5)));
  EXPECT_TRUE(t.knows(3, SimTime::minutes(5)));
}

TEST(NeighborTable, EvictionTiesBreakDeterministically) {
  // A multi-way tie (same benefit rank, same deadline) must evict the same
  // peer regardless of insertion order: unordered_map iteration order is a
  // stdlib implementation detail, and simulation results must not be. The
  // canonical victim is the tied entry with the largest PeerId.
  const std::vector<PeerId> peers{7, 3, 11, 5};
  std::vector<PeerId> order = peers;
  do {
    NeighborTable t(4);
    for (PeerId p : order) {
      t.add(p, 2, NeighborKind::kIndirect, SimTime::zero(),
            SimTime::minutes(10));
    }
    EXPECT_TRUE(t.add(100, 1, NeighborKind::kDirect, SimTime::zero(),
                      SimTime::minutes(10)));
    EXPECT_FALSE(t.knows(11, SimTime::zero())) << "victim not canonical";
    for (PeerId p : {3, 5, 7}) {
      EXPECT_TRUE(t.knows(p, SimTime::zero()));
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(NeighborTable, ExpiredTiesBreakDeterministically) {
  // Same for the expired-reuse path: among equally-expired entries the one
  // with the largest PeerId is reclaimed, in every insertion order.
  std::vector<PeerId> order{4, 9, 2};
  std::sort(order.begin(), order.end());
  do {
    NeighborTable t(3);
    for (PeerId p : order) {
      t.add(p, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(1));
    }
    EXPECT_TRUE(t.add(50, 3, NeighborKind::kIndirect, SimTime::minutes(5),
                      SimTime::minutes(10)));
    EXPECT_EQ(t.entries().count(9), 0u) << "victim not canonical";
    EXPECT_EQ(t.entries().count(2), 1u);
    EXPECT_EQ(t.entries().count(4), 1u);
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(NeighborTable, LongestExpiredIsReclaimedFirst) {
  NeighborTable t(2);
  t.add(1, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(1));
  t.add(2, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(3));
  // Both are expired at t=10; the one that expired first (peer 1) goes.
  EXPECT_TRUE(t.add(3, 1, NeighborKind::kDirect, SimTime::minutes(10),
                    SimTime::minutes(10)));
  EXPECT_EQ(t.entries().count(1), 0u);
  EXPECT_EQ(t.entries().count(2), 1u);
}

TEST(NeighborTable, PurgeDropsExpired) {
  NeighborTable t(10);
  t.add(1, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(1));
  t.add(2, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(60));
  t.purge(SimTime::minutes(5));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.knows(2, SimTime::minutes(5)));
}

TEST(NeighborTable, EraseRemovesEntry) {
  NeighborTable t(10);
  t.add(1, 1, NeighborKind::kDirect, SimTime::zero(), SimTime::minutes(10));
  t.erase(1);
  EXPECT_FALSE(t.knows(1, SimTime::zero()));
}

// ----------------------------------------------------- NeighborResolution

TEST(NeighborResolution, RegisterPathFillsRequesterTable) {
  NeighborResolution res(100, SimTime::minutes(90));
  const std::vector<std::vector<PeerId>> hops{{10, 11}, {20, 21, 22}, {30}};
  res.register_path(1, hops, SimTime::zero());
  auto& table = res.table(1);
  for (PeerId p : {10, 11, 20, 21, 22, 30}) {
    EXPECT_TRUE(table.knows(static_cast<PeerId>(p), SimTime::zero()));
  }
  // Hop indices recorded as direct neighbors at their distance.
  EXPECT_EQ(table.entries().at(10).hop, 1);
  EXPECT_EQ(table.entries().at(20).hop, 2);
  EXPECT_EQ(table.entries().at(30).hop, 3);
  EXPECT_EQ(table.entries().at(20).kind, NeighborKind::kDirect);
}

TEST(NeighborResolution, MessageAccountingCoversNotificationFanout) {
  NeighborResolution res(100, SimTime::minutes(90));
  const std::vector<std::vector<PeerId>> hops{{10, 11}, {20, 21, 22}, {30}};
  res.register_path(1, hops, SimTime::zero());
  // Direct notifications: 2 + 3 + 1 = 6; indirect fan-out: 2*3 + 3*1 = 9.
  EXPECT_EQ(res.messages(), 15u);
}

TEST(NeighborResolution, PrepareSelectionCreatesIndirectEntries) {
  NeighborResolution res(100, SimTime::minutes(90));
  const std::vector<PeerId> candidates{40, 41};
  res.prepare_selection(20, candidates, 2, /*direct=*/false, SimTime::zero());
  auto& table = res.table(20);
  EXPECT_TRUE(table.knows(40, SimTime::zero()));
  EXPECT_EQ(table.entries().at(40).kind, NeighborKind::kIndirect);
  EXPECT_EQ(table.entries().at(40).hop, 1);  // one hop from the selector
}

TEST(NeighborResolution, PrepareSelectionDirectKeepsHopIndex) {
  NeighborResolution res(100, SimTime::minutes(90));
  const std::vector<PeerId> candidates{40};
  res.prepare_selection(1, candidates, 3, /*direct=*/true, SimTime::zero());
  EXPECT_EQ(res.table(1).entries().at(40).hop, 3);
  EXPECT_EQ(res.table(1).entries().at(40).kind, NeighborKind::kDirect);
}

TEST(NeighborResolution, PathAtHopIndexBoundaryIsAccepted) {
  NeighborResolution res(300, SimTime::minutes(90));
  // kMaxHopIndex hops: the last entry's hop distance is exactly 255.
  std::vector<std::vector<PeerId>> hops(kMaxHopIndex);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    hops[i] = {static_cast<PeerId>(1000 + i)};
  }
  res.register_path(1, hops, SimTime::zero());
  const auto& table = res.table(1);
  EXPECT_EQ(table.entries().at(static_cast<PeerId>(1000)).hop, 1);
  EXPECT_EQ(
      table.entries().at(static_cast<PeerId>(1000 + kMaxHopIndex - 1)).hop,
      255);
}

TEST(NeighborResolutionDeathTest, PathBeyondHopIndexBoundaryIsRejected) {
  NeighborResolution res(300, SimTime::minutes(90));
  // One hop past the uint8_t range: without the guard, hop 256 would wrap
  // to 0 and corrupt the benefit ranking.
  std::vector<std::vector<PeerId>> hops(kMaxHopIndex + 1);
  for (std::size_t i = 0; i < hops.size(); ++i) {
    hops[i] = {static_cast<PeerId>(1000 + i)};
  }
  EXPECT_DEATH(res.register_path(1, hops, SimTime::zero()), "precondition");
}

TEST(NeighborResolution, BudgetAppliesPerPeer) {
  NeighborResolution res(2, SimTime::minutes(90));
  const std::vector<PeerId> candidates{1, 2, 3, 4};
  res.prepare_selection(9, candidates, 1, false, SimTime::zero());
  EXPECT_EQ(res.table(9).size(), 2u);
}

TEST(NeighborResolution, DropPeerForgetsTable) {
  NeighborResolution res(100, SimTime::minutes(90));
  res.prepare_selection(9, std::vector<PeerId>{1}, 1, false, SimTime::zero());
  EXPECT_EQ(res.table(9).size(), 1u);
  res.drop_peer(9);
  EXPECT_EQ(res.table(9).size(), 0u);  // a fresh, empty table
}

}  // namespace
}  // namespace qsa::probe
