// LookupService conformance: one contract suite executed against every
// overlay implementation (Chord, CAN, Pastry). Anything the service
// directory relies on must hold identically across substrates.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "qsa/overlay/can_overlay.hpp"
#include "qsa/overlay/chord_id.hpp"
#include "qsa/overlay/chord_ring.hpp"
#include "qsa/overlay/pastry_overlay.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::overlay {
namespace {

template <typename T>
class LookupConformance : public ::testing::Test {
 public:
  static std::unique_ptr<LookupService> make(std::uint64_t seed,
                                             int replicas) {
    return std::make_unique<T>(seed, replicas);
  }
};

using Overlays = ::testing::Types<ChordRing, CanOverlay, PastryOverlay>;

class OverlayNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, ChordRing>) return "Chord";
    if constexpr (std::is_same_v<T, CanOverlay>) return "Can";
    if constexpr (std::is_same_v<T, PastryOverlay>) return "Pastry";
  }
};

TYPED_TEST_SUITE(LookupConformance, Overlays, OverlayNames);

TYPED_TEST(LookupConformance, JoinContainSize) {
  auto o = TestFixture::make(1, 2);
  EXPECT_EQ(o->size(), 0u);
  for (net::PeerId p = 0; p < 10; ++p) {
    EXPECT_FALSE(o->contains(p));
    o->join(p);
    EXPECT_TRUE(o->contains(p));
    EXPECT_EQ(o->size(), static_cast<std::size_t>(p) + 1);
  }
}

TYPED_TEST(LookupConformance, RouteAgreesWithOracleOwner) {
  auto o = TestFixture::make(2, 2);
  for (net::PeerId p = 0; p < 48; ++p) o->join(p);
  o->stabilize_all();
  util::Rng rng(7);
  for (int i = 0; i < 150; ++i) {
    const Key key = rng();
    const net::PeerId oracle = o->owner_of(key);
    const auto from = static_cast<net::PeerId>(rng.index(48));
    EXPECT_EQ(o->route(key, from).owner, oracle);
  }
}

TYPED_TEST(LookupConformance, RouteFromOwnerIsFree) {
  auto o = TestFixture::make(3, 2);
  for (net::PeerId p = 0; p < 32; ++p) o->join(p);
  o->stabilize_all();
  util::Rng rng(8);
  for (int i = 0; i < 60; ++i) {
    const Key key = rng();
    const net::PeerId owner = o->owner_of(key);
    const auto stats = o->route(key, owner);
    EXPECT_EQ(stats.owner, owner);
    EXPECT_EQ(stats.hops, 0);
  }
}

TYPED_TEST(LookupConformance, StorageRoundTrip) {
  auto o = TestFixture::make(4, 2);
  for (net::PeerId p = 0; p < 24; ++p) o->join(p);
  o->stabilize_all();
  util::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const Key key = rng();
    o->insert(key, static_cast<std::uint64_t>(i));
    o->insert(key, static_cast<std::uint64_t>(i) + 1000);
    const auto values = o->get(key);
    EXPECT_EQ(std::set<std::uint64_t>(values.begin(), values.end()),
              (std::set<std::uint64_t>{static_cast<std::uint64_t>(i),
                                       static_cast<std::uint64_t>(i) + 1000}));
    o->erase(key, static_cast<std::uint64_t>(i));
    EXPECT_EQ(o->get(key),
              (std::vector<std::uint64_t>{static_cast<std::uint64_t>(i) + 1000}));
  }
}

TYPED_TEST(LookupConformance, GracefulChurnNeverLosesData) {
  auto o = TestFixture::make(5, 2);
  for (net::PeerId p = 0; p < 40; ++p) o->join(p);
  o->stabilize_all();
  util::Rng rng(10);
  std::vector<Key> keys;
  for (int i = 0; i < 50; ++i) {
    keys.push_back(rng());
    o->insert(keys.back(), static_cast<std::uint64_t>(i));
  }
  net::PeerId next = 40;
  for (int step = 0; step < 30; ++step) {
    o->leave(static_cast<net::PeerId>(step));
    o->join(next++);
    o->stabilize_all();
    for (int i = 0; i < 50; ++i) {
      const auto values = o->get(keys[static_cast<std::size_t>(i)]);
      EXPECT_TRUE(std::find(values.begin(), values.end(),
                            static_cast<std::uint64_t>(i)) != values.end())
          << OverlayNames::GetName<TypeParam>(0) << " lost key " << i
          << " at step " << step;
    }
  }
}

TYPED_TEST(LookupConformance, AbruptFailureHealedByRepublish) {
  auto o = TestFixture::make(6, 2);
  for (net::PeerId p = 0; p < 40; ++p) o->join(p);
  o->stabilize_all();
  util::Rng rng(11);
  std::vector<Key> keys;
  for (int i = 0; i < 40; ++i) keys.push_back(rng());
  auto publish_all = [&] {
    for (int i = 0; i < 40; ++i) {
      o->insert(keys[static_cast<std::size_t>(i)],
                static_cast<std::uint64_t>(i));
    }
  };
  publish_all();
  // Kill a third of the overlay abruptly, then republish (the directory's
  // soft-state heal): every key must be readable again.
  for (net::PeerId p = 0; p < 13; ++p) o->fail(p);
  o->stabilize_all();
  publish_all();
  for (int i = 0; i < 40; ++i) {
    const auto values = o->get(keys[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(std::find(values.begin(), values.end(),
                          static_cast<std::uint64_t>(i)) != values.end())
        << "key " << i;
  }
}

TYPED_TEST(LookupConformance, HopsStayBoundedAtScale) {
  auto o = TestFixture::make(7, 2);
  for (net::PeerId p = 0; p < 512; ++p) o->join(p);
  o->stabilize_all();
  util::Rng rng(12);
  double total = 0;
  for (int i = 0; i < 200; ++i) {
    const auto stats =
        o->route(rng(), static_cast<net::PeerId>(rng.index(512)));
    total += stats.hops;
    // Loosest common bound: even sqrt-routing CAN stays under ~4*sqrt(512).
    EXPECT_LE(stats.hops, 96);
  }
  EXPECT_LE(total / 200, 40.0);
}

TYPED_TEST(LookupConformance, LatencyAccountedWithNetwork) {
  auto o = TestFixture::make(8, 2);
  for (net::PeerId p = 0; p < 64; ++p) o->join(p);
  o->stabilize_all();
  net::NetworkModel net(8, net::ProbeClock(sim::SimTime::seconds(30)));
  util::Rng rng(13);
  bool some_latency = false;
  for (int i = 0; i < 60; ++i) {
    const auto stats = o->route(rng(), 0, &net);
    EXPECT_GE(stats.latency.as_millis(), stats.hops);  // >= 1 ms per hop
    some_latency |= stats.latency > sim::SimTime::zero();
  }
  EXPECT_TRUE(some_latency);
}

TYPED_TEST(LookupConformance, GetOnEmptyOverlayIsEmpty) {
  auto o = TestFixture::make(10, 2);
  EXPECT_TRUE(o->get(123).empty());
}

TYPED_TEST(LookupConformance, LastNodeLeavingEmptiesOverlay) {
  auto o = TestFixture::make(11, 2);
  o->join(0);
  o->insert(42, 7);
  o->leave(0);
  EXPECT_EQ(o->size(), 0u);
  EXPECT_FALSE(o->contains(0));
  EXPECT_TRUE(o->get(42).empty());
  // The overlay bootstraps again afterwards.
  o->join(1);
  EXPECT_EQ(o->owner_of(42), 1u);
  o->insert(42, 9);
  EXPECT_EQ(o->get(42), (std::vector<std::uint64_t>{9}));
}

TYPED_TEST(LookupConformance, DoubleJoinForbiddenByContains) {
  auto o = TestFixture::make(12, 2);
  o->join(5);
  EXPECT_TRUE(o->contains(5));
  // The contract: callers check contains() before join; joining a present
  // peer is a precondition violation, so we only verify the query side.
  EXPECT_FALSE(o->contains(6));
}

TYPED_TEST(LookupConformance, EraseOnEmptyOverlayIsNoop) {
  auto o = TestFixture::make(9, 2);
  o->erase(42, 1);  // must not crash
  o->join(0);
  o->insert(42, 1);
  o->erase(42, 99);  // absent value: no-op
  EXPECT_EQ(o->get(42), (std::vector<std::uint64_t>{1}));
}

}  // namespace
}  // namespace qsa::overlay
