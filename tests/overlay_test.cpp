#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "qsa/net/network.hpp"
#include "qsa/overlay/chord_id.hpp"
#include "qsa/overlay/chord_ring.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::overlay {
namespace {

// ------------------------------------------------------- ring intervals

TEST(ChordInterval, OpenClosedBasic) {
  EXPECT_TRUE(in_interval_oc(10, 20, 15));
  EXPECT_TRUE(in_interval_oc(10, 20, 20));
  EXPECT_FALSE(in_interval_oc(10, 20, 10));
  EXPECT_FALSE(in_interval_oc(10, 20, 25));
}

TEST(ChordInterval, OpenClosedWraps) {
  EXPECT_TRUE(in_interval_oc(~0ull - 5, 5, 0));
  EXPECT_TRUE(in_interval_oc(~0ull - 5, 5, 5));
  EXPECT_TRUE(in_interval_oc(~0ull - 5, 5, ~0ull));
  EXPECT_FALSE(in_interval_oc(~0ull - 5, 5, 6));
  EXPECT_FALSE(in_interval_oc(~0ull - 5, 5, ~0ull - 5));
}

TEST(ChordInterval, DegenerateIsWholeRing) {
  EXPECT_TRUE(in_interval_oc(7, 7, 0));
  EXPECT_TRUE(in_interval_oc(7, 7, 7));
}

TEST(ChordInterval, OpenOpenBasic) {
  EXPECT_TRUE(in_interval_oo(10, 20, 15));
  EXPECT_FALSE(in_interval_oo(10, 20, 10));
  EXPECT_FALSE(in_interval_oo(10, 20, 20));
  EXPECT_TRUE(in_interval_oo(20, 10, 25));
  EXPECT_TRUE(in_interval_oo(20, 10, 5));
  EXPECT_FALSE(in_interval_oo(20, 10, 15));
}

TEST(ChordKeys, NodeAndDataKeysAreStable) {
  EXPECT_EQ(node_key(1, 7), node_key(1, 7));
  EXPECT_NE(node_key(1, 7), node_key(1, 8));
  EXPECT_NE(node_key(1, 7), node_key(2, 7));
  EXPECT_EQ(data_key(1, "svc"), data_key(1, "svc"));
  EXPECT_NE(data_key(1, "svc"), data_key(1, "svc2"));
  EXPECT_NE(data_key(1, std::uint64_t{3}), data_key(1, std::uint64_t{4}));
}

// ------------------------------------------------------------- ChordRing

ChordRing make_ring(std::size_t nodes, std::uint64_t seed = 1,
                    int replicas = 2) {
  ChordRing ring(seed, replicas);
  for (net::PeerId p = 0; p < nodes; ++p) ring.join(p);
  ring.stabilize_all();
  return ring;
}

TEST(ChordRing, JoinGrowsRing) {
  ChordRing ring(1);
  EXPECT_EQ(ring.size(), 0u);
  ring.join(0);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_TRUE(ring.contains(0));
  EXPECT_FALSE(ring.contains(1));
}

TEST(ChordRing, SingleNodeOwnsEverything) {
  auto ring = make_ring(1);
  EXPECT_EQ(ring.owner_of(0), 0u);
  EXPECT_EQ(ring.owner_of(~0ull), 0u);
  const auto stats = ring.route(12345, 0);
  EXPECT_EQ(stats.owner, 0u);
  EXPECT_EQ(stats.hops, 0);
}

TEST(ChordRing, RouteFindsOwner) {
  auto ring = make_ring(64);
  util::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const ChordKey key = rng();
    const net::PeerId oracle = ring.owner_of(key);
    for (net::PeerId from : {net::PeerId{0}, net::PeerId{17}, net::PeerId{63}}) {
      const auto stats = ring.route(key, from);
      EXPECT_EQ(stats.owner, oracle) << "key=" << key << " from=" << from;
    }
  }
}

TEST(ChordRing, RouteHopsAreLogarithmic) {
  auto ring = make_ring(256);
  util::Rng rng(10);
  double total_hops = 0;
  constexpr int kLookups = 500;
  for (int i = 0; i < kLookups; ++i) {
    const auto stats =
        ring.route(rng(), static_cast<net::PeerId>(rng.index(256)));
    total_hops += stats.hops;
    EXPECT_LE(stats.hops, 2 * 8 + 4);  // generous O(log 256) bound
  }
  EXPECT_LE(total_hops / kLookups, 8.0);  // ~ (log2 256)/2 = 4 expected
  EXPECT_GE(total_hops / kLookups, 1.0);
}

TEST(ChordRing, RouteAccumulatesLatency) {
  auto ring = make_ring(32);
  net::NetworkModel net(5, net::ProbeClock(sim::SimTime::seconds(30)));
  util::Rng rng(11);
  bool some_latency = false;
  for (int i = 0; i < 50; ++i) {
    const auto stats = ring.route(rng(), 0, &net);
    if (stats.hops > 0) {
      EXPECT_GE(stats.latency.as_millis(), stats.hops * 1);  // >= 1ms per hop
      some_latency = some_latency || stats.latency > sim::SimTime::zero();
    }
  }
  EXPECT_TRUE(some_latency);
}

TEST(ChordRing, InsertAndGet) {
  auto ring = make_ring(16);
  const ChordKey key = data_key(1, "service-a");
  ring.insert(key, 100);
  ring.insert(key, 200);
  const auto values = ring.get(key);
  EXPECT_EQ(values, (std::vector<std::uint64_t>{100, 200}));
}

TEST(ChordRing, InsertIsIdempotent) {
  auto ring = make_ring(16);
  const ChordKey key = data_key(1, "svc");
  ring.insert(key, 5);
  ring.insert(key, 5);
  EXPECT_EQ(ring.get(key).size(), 1u);
}

TEST(ChordRing, EraseRemovesValue) {
  auto ring = make_ring(16);
  const ChordKey key = data_key(1, "svc");
  ring.insert(key, 5);
  ring.insert(key, 6);
  ring.erase(key, 5);
  EXPECT_EQ(ring.get(key), (std::vector<std::uint64_t>{6}));
  ring.erase(key, 6);
  EXPECT_TRUE(ring.get(key).empty());
}

TEST(ChordRing, GetMissingKeyIsEmpty) {
  auto ring = make_ring(8);
  EXPECT_TRUE(ring.get(data_key(1, "nothing")).empty());
}

TEST(ChordRing, GracefulLeaveHandsOffKeys) {
  auto ring = make_ring(32);
  util::Rng rng(12);
  std::vector<ChordKey> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(rng());
    ring.insert(keys.back(), static_cast<std::uint64_t>(i));
  }
  // Gracefully remove half the nodes.
  for (net::PeerId p = 0; p < 16; ++p) ring.leave(p);
  ring.stabilize_all();
  for (int i = 0; i < 64; ++i) {
    const auto values = ring.get(keys[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(std::find(values.begin(), values.end(),
                          static_cast<std::uint64_t>(i)) != values.end())
        << "key " << i << " lost after graceful leaves";
  }
}

TEST(ChordRing, AbruptFailureSurvivedByReplicas) {
  // With replication 3, any single failure keeps every value readable.
  auto ring = make_ring(32, /*seed=*/2, /*replicas=*/3);
  util::Rng rng(13);
  std::vector<ChordKey> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(rng());
    ring.insert(keys.back(), static_cast<std::uint64_t>(i));
  }
  ring.fail(7);
  ring.stabilize_all();
  for (int i = 0; i < 64; ++i) {
    const auto values = ring.get(keys[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(std::find(values.begin(), values.end(),
                          static_cast<std::uint64_t>(i)) != values.end())
        << "key " << i << " lost after one abrupt failure";
  }
}

TEST(ChordRing, LeaveUnknownPeerIsNoop) {
  auto ring = make_ring(4);
  ring.leave(99);
  ring.fail(99);
  EXPECT_EQ(ring.size(), 4u);
}

TEST(ChordRing, RouteWorksWithStaleFingersAfterChurn) {
  auto ring = make_ring(128);
  util::Rng rng(14);
  // Fail a quarter of the nodes *without* stabilizing: fingers go stale,
  // but routing must still reach the right owner via successor fallback.
  for (net::PeerId p = 0; p < 32; ++p) ring.fail(p);
  for (int i = 0; i < 100; ++i) {
    const ChordKey key = rng();
    const net::PeerId from = static_cast<net::PeerId>(rng.uniform_int(32, 127));
    const auto stats = ring.route(key, from);
    EXPECT_EQ(stats.owner, ring.owner_of(key));
  }
}

TEST(ChordRing, StabilizeRoundRefreshesIncrementally) {
  auto ring = make_ring(64);
  for (net::PeerId p = 0; p < 16; ++p) ring.fail(p);
  // Ten 10% rounds cover the whole ring.
  for (int i = 0; i < 10; ++i) ring.stabilize_round(0.1);
  util::Rng rng(15);
  for (int i = 0; i < 50; ++i) {
    const ChordKey key = rng();
    const auto stats =
        ring.route(key, static_cast<net::PeerId>(rng.uniform_int(16, 63)));
    EXPECT_EQ(stats.owner, ring.owner_of(key));
    EXPECT_LE(stats.hops, 20);  // refreshed fingers keep routes short
  }
}

TEST(ChordRing, JoinAfterDataMovesResponsibility) {
  ChordRing ring(3, 1);  // replicas=1: ownership movement is observable
  for (net::PeerId p = 0; p < 8; ++p) ring.join(p);
  ring.stabilize_all();
  util::Rng rng(16);
  std::vector<std::pair<ChordKey, std::uint64_t>> data;
  for (int i = 0; i < 40; ++i) {
    data.emplace_back(rng(), static_cast<std::uint64_t>(i));
    ring.insert(data.back().first, data.back().second);
  }
  for (net::PeerId p = 8; p < 24; ++p) ring.join(p);
  ring.stabilize_all();
  for (const auto& [key, value] : data) {
    const auto values = ring.get(key);
    EXPECT_TRUE(std::find(values.begin(), values.end(), value) != values.end())
        << "value lost after joins moved key ranges";
  }
}

// Property sweep: random join/leave/fail churn, then every key lookup from
// every surviving node agrees with the oracle owner.
class ChordChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChordChurnProperty, RoutingStaysCorrectUnderChurn) {
  util::Rng rng(util::derive_seed(GetParam(), "chord-churn", 0));
  ChordRing ring(GetParam(), 3);
  std::set<net::PeerId> members;
  net::PeerId next = 0;
  for (int i = 0; i < 40; ++i) {
    ring.join(next);
    members.insert(next++);
  }
  ring.stabilize_all();
  for (int step = 0; step < 120; ++step) {
    const auto action = rng.index(4);
    if (action == 0 || members.size() < 8) {
      ring.join(next);
      members.insert(next++);
    } else if (action == 1) {
      auto it = members.begin();
      std::advance(it, static_cast<long>(rng.index(members.size())));
      ring.leave(*it);
      members.erase(it);
    } else if (action == 2) {
      auto it = members.begin();
      std::advance(it, static_cast<long>(rng.index(members.size())));
      ring.fail(*it);
      members.erase(it);
    } else {
      ring.stabilize_round(0.3);
    }
    // Routing from a random member must find the oracle owner.
    const ChordKey key = rng();
    auto it = members.begin();
    std::advance(it, static_cast<long>(rng.index(members.size())));
    const auto stats = ring.route(key, *it);
    EXPECT_EQ(stats.owner, ring.owner_of(key)) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChordChurnProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace qsa::overlay
