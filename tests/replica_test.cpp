// qsa::replica — demand-driven, QoS-aware service replication. Under test:
//
//  1. the demand estimator: exponentially decayed event counts with the
//     configured half-life, fed by admission outcomes;
//  2. the placement rule: a trip only fires past the hysteresis threshold
//     under pool pressure, and the chosen clone host passes exactly the
//     checks a dynamically selected host would (headroom >= R, probed
//     bandwidth >= b, stable uptime), evidence kept on the ReplicaRecord;
//  3. lifecycle: refractory period, max_replicas cap, cold-replica
//     retirement, in-use pinning, and churn cleanup;
//  4. grid level: with --replication off the knobs are inert and no
//     replica/load metric ever appears (byte-identical artifacts); with it
//     on, runs are bit-reproducible across repeats and runner thread
//     counts, and every replica on file passed the QoS checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "qsa/harness/experiment.hpp"
#include "qsa/harness/grid.hpp"
#include "qsa/obs/export.hpp"
#include "qsa/obs/sink.hpp"
#include "qsa/overlay/chord_ring.hpp"
#include "qsa/qos/satisfy.hpp"
#include "qsa/registry/directory.hpp"
#include "qsa/replica/manager.hpp"

namespace qsa {
namespace {

constexpr qos::ParamId kLevel = 0;

qos::QosVector range_vec(double lo, double hi) {
  qos::QosVector v;
  v.set(kLevel, qos::QosValue::range(lo, hi));
  return v;
}

// ------------------------------------------------------------- fixture

/// 48 long-lived peers (capacity {500,500}), one service with one instance
/// (R = {50,50}, b = 10 kbps) provided by the first four peers. Tests
/// saturate the provider pool by reserving most of each provider's capacity
/// and drive the ReplicaManager directly with demand signals.
struct ReplicaFixture : ::testing::Test {
  void SetUp() override {
    for (int p = 0; p < 48; ++p) {
      ids.push_back(peers.add_peer(qos::ResourceVector{500, 500},
                                   sim::SimTime::minutes(-100)));
      ring.join(ids.back());
    }
    ring.stabilize_all();
    s0 = catalog.add_service("a");
    registry::ServiceInstance spec;
    spec.service = s0;
    spec.qout = range_vec(10, 20);
    spec.resources = qos::ResourceVector{50, 50};
    spec.bandwidth_kbps = 10;
    i0 = catalog.add_instance(spec);
    for (int k = 0; k < 4; ++k) placement.add_provider(i0, ids[k]);
    dir.publish_all();
  }

  /// Reserves all but `leave` of each provider's capacity at `when`; the
  /// probe snapshots see it from the next epoch boundary on.
  void saturate_providers(registry::InstanceId inst, double leave,
                          sim::SimTime when) {
    for (net::PeerId p : placement.providers(inst)) {
      const auto avail = peers.probed_available(p, when);
      (void)avail;
      ASSERT_TRUE(peers.try_reserve(
          p, qos::ResourceVector{500 - leave, 500 - leave}, when));
    }
  }

  replica::ReplicaConfig fast_config() const {
    replica::ReplicaConfig cfg;
    cfg.enabled = true;
    cfg.threshold = 4;
    cfg.cooldown = sim::SimTime::minutes(1);
    cfg.max_replicas = 4;
    return cfg;
  }

  std::unique_ptr<replica::ReplicaManager> make(
      const replica::ReplicaConfig& cfg, std::uint64_t seed = 7) {
    return std::make_unique<replica::ReplicaManager>(
        seed, cfg, catalog, placement, dir, peers, net,
        qos::TupleWeights::uniform(2), qos::ResourceSchema::paper());
  }

  overlay::ChordRing ring{1, 3};
  registry::ServiceCatalog catalog;
  registry::PlacementMap placement;
  registry::ServiceDirectory dir{1, ring, catalog};
  net::PeerTable peers{qos::ResourceSchema::paper(), net::ProbeClock()};
  net::NetworkModel net{1, net::ProbeClock()};
  std::vector<net::PeerId> ids;
  registry::ServiceId s0 = 0;
  registry::InstanceId i0 = 0;
};

// ------------------------------------------------------ demand estimator

TEST_F(ReplicaFixture, DemandDecaysWithConfiguredHalfLife) {
  auto cfg = fast_config();
  cfg.threshold = 1000;  // never trips here
  cfg.demand_half_life = sim::SimTime::minutes(2);
  auto mgr = make(cfg);

  const registry::InstanceId insts[] = {i0};
  const auto t0 = sim::SimTime::zero();
  mgr->on_admitted(insts, t0);
  EXPECT_DOUBLE_EQ(mgr->demand(i0, t0), 1.0);
  EXPECT_NEAR(mgr->demand(i0, t0 + cfg.demand_half_life), 0.5, 1e-12);
  EXPECT_NEAR(mgr->demand(i0, t0 + sim::SimTime::minutes(8)), 1.0 / 16, 1e-12);
  EXPECT_DOUBLE_EQ(mgr->demand(i0 + 999, t0), 0.0);  // unknown instance
}

TEST_F(ReplicaFixture, RejectionBlameWeighsMoreThanPathPresence) {
  auto cfg = fast_config();
  cfg.threshold = 1000;
  auto mgr = make(cfg);

  const registry::InstanceId insts[] = {i0};
  const net::PeerId hosts[] = {ids[0]};
  const auto t0 = sim::SimTime::zero();
  mgr->on_rejected(insts, hosts, /*blamed=*/ids[0], t0);
  EXPECT_DOUBLE_EQ(mgr->demand(i0, t0), 2.0);  // blamed host: strong signal
  mgr->on_rejected(insts, hosts, /*blamed=*/ids[3], t0);
  EXPECT_DOUBLE_EQ(mgr->demand(i0, t0), 3.0);  // on the path: weak signal
}

// -------------------------------------------------------- placement rule

TEST_F(ReplicaFixture, TripPlacesQosCapableCloneAndPublishesIt) {
  saturate_providers(i0, 20, sim::SimTime::zero());  // headroom 20 < R=50
  auto mgr = make(fast_config());

  const registry::InstanceId insts[] = {i0};
  const auto now = sim::SimTime::minutes(2);  // reservations probe-visible
  mgr->on_selection_failure(insts, now);  // score 2 < 4
  EXPECT_EQ(mgr->stats().created, 0u);
  mgr->on_selection_failure(insts, now);  // score 4 -> trip
  ASSERT_EQ(mgr->stats().created, 1u);
  ASSERT_EQ(mgr->active(), 1u);

  const replica::ReplicaRecord& rec = mgr->replicas()[0];
  EXPECT_EQ(rec.instance, i0);
  ASSERT_NE(rec.host, net::kNoPeer);
  // The clone widened the provider pool and is not one of the originals.
  EXPECT_EQ(placement.provider_count(i0), 5u);
  for (int k = 0; k < 4; ++k) EXPECT_NE(rec.host, ids[k]);

  // The replica passed the same checks any dynamically selected host must:
  // probed headroom fits the instance's resource vector R...
  const auto& spec = catalog.instance(rec.instance);
  EXPECT_TRUE(spec.resources.fits_within(rec.headroom));
  EXPECT_EQ(rec.headroom, peers.probed_available(rec.host, now));
  // ...the host looked stable for at least one retirement cycle...
  EXPECT_GE(peers.probed_uptime(rec.host, now), mgr->config().cooldown);
  EXPECT_GT(rec.phi, 0.0);
  // ...and it serves the identical Qout spec, so any requirement the
  // original satisfied the replica satisfies too.
  EXPECT_TRUE(qos::satisfies(spec.qout, range_vec(0, 100)));
  EXPECT_EQ(rec.created, now);
}

TEST_F(ReplicaFixture, NoReplicationWithoutPoolPressure) {
  // Providers keep ample headroom: demand alone must not clone.
  auto mgr = make(fast_config());
  const registry::InstanceId insts[] = {i0};
  const auto now = sim::SimTime::minutes(2);
  for (int i = 0; i < 10; ++i) mgr->on_selection_failure(insts, now);
  EXPECT_EQ(mgr->stats().created, 0u);
  EXPECT_EQ(mgr->stats().rejected_no_host, 0u);
  EXPECT_EQ(placement.provider_count(i0), 4u);
}

TEST_F(ReplicaFixture, RefractoryAllowsOneDecisionPerCooldown) {
  saturate_providers(i0, 20, sim::SimTime::zero());
  auto mgr = make(fast_config());

  const registry::InstanceId insts[] = {i0};
  const auto t1 = sim::SimTime::minutes(2);
  mgr->on_selection_failure(insts, t1);
  mgr->on_selection_failure(insts, t1);
  EXPECT_EQ(mgr->stats().created, 1u);
  // More demand inside the refractory period: no second clone.
  for (int i = 0; i < 10; ++i) mgr->on_selection_failure(insts, t1);
  EXPECT_EQ(mgr->stats().created, 1u);
  // Past the cooldown the next trip may fire again.
  const auto t2 = t1 + mgr->config().cooldown + sim::SimTime::seconds(1);
  mgr->on_selection_failure(insts, t2);
  mgr->on_selection_failure(insts, t2);
  EXPECT_EQ(mgr->stats().created, 2u);
  EXPECT_EQ(placement.provider_count(i0), 6u);
}

TEST_F(ReplicaFixture, MaxReplicasCapsTheCloneCount) {
  saturate_providers(i0, 20, sim::SimTime::zero());
  auto cfg = fast_config();
  cfg.max_replicas = 1;
  auto mgr = make(cfg);

  const registry::InstanceId insts[] = {i0};
  auto now = sim::SimTime::minutes(2);
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 4; ++i) mgr->on_selection_failure(insts, now);
    now = now + mgr->config().cooldown + sim::SimTime::seconds(1);
  }
  EXPECT_EQ(mgr->stats().created, 1u);
  EXPECT_EQ(placement.provider_count(i0), 5u);
}

TEST_F(ReplicaFixture, NoCapableHostIsCountedNotCloned) {
  // An instance too big for any peer: every trip ends in rejected_no_host.
  registry::ServiceInstance big;
  big.service = s0;
  big.qout = range_vec(10, 20);
  big.resources = qos::ResourceVector{600, 600};  // > every peer's capacity
  big.bandwidth_kbps = 10;
  const auto ibig = catalog.add_instance(big);
  placement.add_provider(ibig, ids[0]);
  dir.publish(ibig);

  auto mgr = make(fast_config());
  const registry::InstanceId insts[] = {ibig};
  const auto now = sim::SimTime::minutes(2);
  mgr->on_selection_failure(insts, now);
  mgr->on_selection_failure(insts, now);
  EXPECT_EQ(mgr->stats().created, 0u);
  EXPECT_EQ(mgr->stats().rejected_no_host, 1u);
  EXPECT_EQ(placement.provider_count(ibig), 1u);
  // A miss burns the refractory period too (hysteresis, hit or miss).
  mgr->on_selection_failure(insts, now);
  EXPECT_EQ(mgr->stats().rejected_no_host, 1u);
}

// ------------------------------------------------------------- lifecycle

TEST_F(ReplicaFixture, SweepRetiresOnlyOldColdReplicas) {
  saturate_providers(i0, 20, sim::SimTime::zero());
  auto mgr = make(fast_config());  // watermark = 4 * 0.25 = 1

  const registry::InstanceId insts[] = {i0};
  const auto t1 = sim::SimTime::minutes(2);
  mgr->on_selection_failure(insts, t1);
  mgr->on_selection_failure(insts, t1);
  ASSERT_EQ(mgr->active(), 1u);

  mgr->sweep(t1);  // age 0 < cooldown: kept
  EXPECT_EQ(mgr->active(), 1u);
  mgr->sweep(t1 + sim::SimTime::minutes(1));  // old enough, demand ~1.4: kept
  EXPECT_EQ(mgr->active(), 1u);
  mgr->sweep(t1 + sim::SimTime::minutes(6));  // demand 2*2^-3 = 0.25 < 1
  EXPECT_EQ(mgr->active(), 0u);
  EXPECT_EQ(mgr->stats().retired, 1u);
  EXPECT_EQ(placement.provider_count(i0), 4u);
}

TEST_F(ReplicaFixture, ActiveSessionsPinReplicasUntilTeardown) {
  saturate_providers(i0, 20, sim::SimTime::zero());
  auto mgr = make(fast_config());

  const registry::InstanceId insts[] = {i0};
  const auto t1 = sim::SimTime::minutes(2);
  mgr->on_selection_failure(insts, t1);
  mgr->on_selection_failure(insts, t1);
  mgr->on_admitted(insts, t1);  // a session now uses the instance
  ASSERT_EQ(mgr->active(), 1u);

  mgr->sweep(t1 + sim::SimTime::minutes(30));  // stone cold, but in use
  EXPECT_EQ(mgr->active(), 1u);
  mgr->on_session_ended(insts);
  mgr->sweep(t1 + sim::SimTime::minutes(30));
  EXPECT_EQ(mgr->active(), 0u);
  EXPECT_EQ(mgr->stats().retired, 1u);
}

TEST_F(ReplicaFixture, HostDepartureDropsRecordsAndFreesTheSlot) {
  saturate_providers(i0, 20, sim::SimTime::zero());
  auto cfg = fast_config();
  cfg.max_replicas = 1;
  auto mgr = make(cfg);

  const registry::InstanceId insts[] = {i0};
  const auto t1 = sim::SimTime::minutes(2);
  mgr->on_selection_failure(insts, t1);
  mgr->on_selection_failure(insts, t1);
  ASSERT_EQ(mgr->active(), 1u);
  const net::PeerId host = mgr->replicas()[0].host;

  // Churn: the harness removes the peer from the placement map wholesale
  // and then tells the manager.
  (void)placement.remove_peer(host);
  mgr->peer_departed(host);
  EXPECT_EQ(mgr->active(), 0u);
  EXPECT_EQ(mgr->stats().host_departures, 1u);
  EXPECT_EQ(placement.provider_count(i0), 4u);

  // The departed clone no longer counts against max_replicas: once the
  // refractory period lapses the instance may be replicated again.
  const auto t2 = t1 + mgr->config().cooldown + sim::SimTime::seconds(1);
  mgr->on_selection_failure(insts, t2);
  mgr->on_selection_failure(insts, t2);
  EXPECT_EQ(mgr->stats().created, 2u);
  EXPECT_EQ(mgr->active(), 1u);
}

TEST_F(ReplicaFixture, MetricsExportCountersAndActiveGauge) {
  saturate_providers(i0, 20, sim::SimTime::zero());
  obs::MetricsRegistry reg;
  auto mgr = make(fast_config());
  mgr->set_metrics(&reg);

  const registry::InstanceId insts[] = {i0};
  const auto t1 = sim::SimTime::minutes(2);
  mgr->on_selection_failure(insts, t1);
  mgr->on_selection_failure(insts, t1);
  EXPECT_EQ(reg.counter("replica.created").value, 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("replica.active").value, 1.0);
  mgr->sweep(t1 + sim::SimTime::minutes(6));
  EXPECT_EQ(reg.counter("replica.retired").value, 1u);
  EXPECT_DOUBLE_EQ(reg.gauge("replica.active").value, 0.0);
  EXPECT_DOUBLE_EQ(reg.gauge("replica.active").high_water, 1.0);
}

// ------------------------------------------------- grid-level guarantees

harness::GridConfig grid_config(std::uint64_t seed) {
  harness::GridConfig c;
  c.seed = seed;
  c.peers = 200;
  c.min_providers = 10;
  c.max_providers = 20;
  c.apps.applications = 5;
  c.requests.rate_per_min = 30;
  c.churn.events_per_min = 6;
  c.admission_retries = 1;
  c.horizon = sim::SimTime::minutes(10);
  c.sample_period = sim::SimTime::minutes(2);
  c.algorithm = harness::AlgorithmKind::kQsa;
  c.observe = true;
  return c;
}

/// Replication tuned to actually fire inside the short test horizon.
harness::GridConfig replicating_config(std::uint64_t seed) {
  auto c = grid_config(seed);
  c.replication.enabled = true;
  c.replication.threshold = 2;
  c.replication.cooldown = sim::SimTime::minutes(1);
  c.replication.min_pool_pressure = 0;  // demand alone suffices in tests
  return c;
}

struct RunArtifacts {
  harness::GridResult result;
  std::string trace;
  std::string metrics_csv;
};

RunArtifacts run_grid(const harness::GridConfig& cfg) {
  harness::GridSimulation grid(cfg);
  obs::StringSpanSink sink;  // spans stream out as requests finish
  grid.set_span_sink(&sink);
  RunArtifacts a;
  a.result = grid.run();
  a.trace = sink.str();
  a.metrics_csv = obs::metrics_csv(*grid.metrics());
  return a;
}

void expect_same_artifacts(const RunArtifacts& a, const RunArtifacts& b,
                           std::uint64_t seed) {
  EXPECT_EQ(a.result.requests, b.result.requests);
  EXPECT_EQ(a.result.successes, b.result.successes);
  EXPECT_EQ(a.result.failures_discovery, b.result.failures_discovery);
  EXPECT_EQ(a.result.failures_composition, b.result.failures_composition);
  EXPECT_EQ(a.result.failures_selection, b.result.failures_selection);
  EXPECT_EQ(a.result.failures_admission, b.result.failures_admission);
  EXPECT_EQ(a.result.failures_departure, b.result.failures_departure);
  EXPECT_EQ(a.result.lookup_hops, b.result.lookup_hops);
  EXPECT_EQ(a.result.setup_latency_ms, b.result.setup_latency_ms);
  EXPECT_EQ(a.result.notification_messages, b.result.notification_messages);
  EXPECT_EQ(a.result.random_fallback_hops, b.result.random_fallback_hops);
  EXPECT_EQ(a.result.avg_composition_cost, b.result.avg_composition_cost);
  EXPECT_EQ(a.result.counters.all(), b.result.counters.all());
  ASSERT_EQ(a.result.series.size(), b.result.series.size());
  for (std::size_t i = 0; i < a.result.series.size(); ++i) {
    EXPECT_EQ(a.result.series.samples()[i].value,
              b.result.series.samples()[i].value);
  }
  EXPECT_EQ(a.trace, b.trace) << "seed " << seed;
  EXPECT_EQ(a.metrics_csv, b.metrics_csv) << "seed " << seed;
}

TEST(GridReplication, DisabledKnobsAreInertAndExportNothing) {
  for (const std::uint64_t seed : {11u, 23u}) {
    const auto base = grid_config(seed);  // replication off (the default)
    auto tweaked = base;
    // Every replica knob cranked — with enabled=false they must all be
    // inert, keeping the run byte-identical to the previous commit's.
    tweaked.replication.threshold = 2;
    tweaked.replication.cooldown = sim::SimTime::seconds(30);
    tweaked.replication.max_replicas = 16;
    tweaked.replication.min_pool_pressure = 0;

    const auto a = run_grid(base);
    const auto b = run_grid(tweaked);
    expect_same_artifacts(a, b, seed);

    // No replica or load-concentration artifact may leak into an off run.
    EXPECT_EQ(a.metrics_csv.find("replica."), std::string::npos);
    EXPECT_EQ(a.metrics_csv.find("provider.load"), std::string::npos);
    EXPECT_EQ(a.result.counters.get("replica.created"), 0u);
    EXPECT_EQ(a.result.counters.get("load.provider_peak"), 0u);
  }
}

TEST(GridReplication, EnabledRunsAreBitReproducible) {
  const auto cfg = replicating_config(17);
  const auto a = run_grid(cfg);
  const auto b = run_grid(cfg);
  expect_same_artifacts(a, b, 17);
  // The run actually exercised the subsystem.
  EXPECT_GT(a.result.counters.get("replica.created"), 0u);
  EXPECT_GT(a.result.counters.get("load.provider_peak"), 0u);
}

TEST(GridReplication, ReproducibleAcrossRunnerThreadCounts) {
  std::vector<harness::ExperimentCell> cells;
  for (const std::uint64_t seed : {5u, 29u, 83u}) {
    cells.push_back({"seed " + std::to_string(seed),
                     replicating_config(seed)});
  }
  const auto serial = harness::ExperimentRunner(1).run(cells);
  const auto parallel = harness::ExperimentRunner(4).run(cells);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.successes, parallel[i].result.successes);
    EXPECT_EQ(serial[i].result.counters.all(),
              parallel[i].result.counters.all());
    EXPECT_EQ(serial[i].metrics_json, parallel[i].metrics_json) << cells[i].label;
    EXPECT_EQ(serial[i].trace_jsonl, parallel[i].trace_jsonl) << cells[i].label;
  }
}

TEST(GridReplication, LiveReplicasPassedTheSameQosChecksAsOriginals) {
  const auto cfg = replicating_config(17);
  harness::GridSimulation grid(cfg);
  const auto r = grid.run();
  ASSERT_GT(r.counters.get("replica.created"), 0u);

  const replica::ReplicaManager* mgr = grid.replicas();
  ASSERT_NE(mgr, nullptr);
  for (const auto& rec : mgr->replicas()) {
    const auto& spec = grid.catalog().instance(rec.instance);
    // Same resource check as any admitted host: R fit the probed headroom.
    EXPECT_TRUE(spec.resources.fits_within(rec.headroom))
        << "instance " << rec.instance << " host " << rec.host;
    EXPECT_GT(rec.phi, 0.0);
    // The clone is a live provider of the template instance.
    const auto providers = grid.placement().providers(rec.instance);
    EXPECT_NE(std::find(providers.begin(), providers.end(), rec.host),
              providers.end());
  }
}

}  // namespace
}  // namespace qsa
