// Pastry overlay: digit arithmetic, numerically-closest ownership, prefix
// routing, takeover, data survival, and the churn property shared by all
// three substrates.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "qsa/overlay/chord_id.hpp"
#include "qsa/overlay/pastry_overlay.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::overlay {
namespace {

PastryOverlay make_pastry(std::size_t nodes, std::uint64_t seed = 1,
                          int replicas = 2) {
  PastryOverlay p(seed, replicas);
  for (net::PeerId id = 0; id < nodes; ++id) p.join(id);
  p.stabilize_all();
  return p;
}

TEST(PastryDigits, DigitExtraction) {
  const std::uint64_t id = 0xABCD'0000'0000'0000ull;
  EXPECT_EQ(PastryOverlay::digit(id, 0), 0xA);
  EXPECT_EQ(PastryOverlay::digit(id, 1), 0xB);
  EXPECT_EQ(PastryOverlay::digit(id, 2), 0xC);
  EXPECT_EQ(PastryOverlay::digit(id, 3), 0xD);
  EXPECT_EQ(PastryOverlay::digit(id, 15), 0x0);
}

TEST(PastryDigits, SharedPrefixLength) {
  EXPECT_EQ(PastryOverlay::shared_digits(0xAB00ull << 48, 0xAB00ull << 48), 16);
  EXPECT_EQ(PastryOverlay::shared_digits(0xAB00ull << 48, 0xAC00ull << 48), 1);
  EXPECT_EQ(PastryOverlay::shared_digits(0xAB00ull << 48, 0xBB00ull << 48), 0);
  EXPECT_EQ(PastryOverlay::shared_digits(0xABC0ull << 48, 0xABD0ull << 48), 2);
}

TEST(PastryDigits, CircularDistance) {
  EXPECT_EQ(PastryOverlay::circular_dist(10, 14), 4u);
  EXPECT_EQ(PastryOverlay::circular_dist(14, 10), 4u);
  EXPECT_EQ(PastryOverlay::circular_dist(0, ~0ull), 1u);
  EXPECT_EQ(PastryOverlay::circular_dist(5, 5), 0u);
}

TEST(PastryOverlay, SingleNodeOwnsEverything) {
  auto p = make_pastry(1);
  EXPECT_EQ(p.owner_of(123), 0u);
  const auto stats = p.route(456, 0);
  EXPECT_EQ(stats.owner, 0u);
  EXPECT_EQ(stats.hops, 0);
}

TEST(PastryOverlay, OwnerIsNumericallyClosest) {
  auto p = make_pastry(64);
  util::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Key key = rng();
    const net::PeerId owner = p.owner_of(key);
    // No joined node may be strictly closer than the reported owner.
    const std::uint64_t owner_id =
        node_key(1 ^ util::hash_str("pastry-node"), owner);
    const std::uint64_t owner_dist =
        PastryOverlay::circular_dist(owner_id, key);
    for (net::PeerId other = 0; other < 64; ++other) {
      const std::uint64_t other_id =
          node_key(1 ^ util::hash_str("pastry-node"), other);
      EXPECT_GE(PastryOverlay::circular_dist(other_id, key), owner_dist);
    }
  }
}

TEST(PastryOverlay, RouteFindsOwner) {
  auto p = make_pastry(128);
  util::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const Key key = rng();
    const net::PeerId oracle = p.owner_of(key);
    for (net::PeerId from : {net::PeerId{0}, net::PeerId{31}, net::PeerId{127}}) {
      const auto stats = p.route(key, from);
      EXPECT_EQ(stats.owner, oracle) << "key=" << key << " from=" << from;
    }
  }
}

TEST(PastryOverlay, HopsBeatChordScaling) {
  // log16(4096) = 3; allow slack for leaf hops.
  auto p = make_pastry(4096);
  util::Rng rng(10);
  double total = 0;
  constexpr int kLookups = 300;
  for (int i = 0; i < kLookups; ++i) {
    const auto stats =
        p.route(rng(), static_cast<net::PeerId>(rng.index(4096)));
    total += stats.hops;
    EXPECT_LE(stats.hops, 10);
  }
  EXPECT_LE(total / kLookups, 5.0);
}

TEST(PastryOverlay, InsertGetErase) {
  auto p = make_pastry(32);
  const Key key = data_key(1, "svc");
  p.insert(key, 7);
  p.insert(key, 8);
  EXPECT_EQ(p.get(key), (std::vector<std::uint64_t>{7, 8}));
  p.erase(key, 7);
  EXPECT_EQ(p.get(key), (std::vector<std::uint64_t>{8}));
  p.erase(key, 8);
  EXPECT_TRUE(p.get(key).empty());
}

TEST(PastryOverlay, JoinMovesOwnership) {
  PastryOverlay p(3, 1);
  for (net::PeerId id = 0; id < 8; ++id) p.join(id);
  p.stabilize_all();
  util::Rng rng(16);
  std::vector<std::pair<Key, std::uint64_t>> data;
  for (int i = 0; i < 40; ++i) {
    data.emplace_back(rng(), static_cast<std::uint64_t>(i));
    p.insert(data.back().first, data.back().second);
  }
  for (net::PeerId id = 8; id < 40; ++id) p.join(id);
  p.stabilize_all();
  for (const auto& [key, value] : data) {
    const auto values = p.get(key);
    EXPECT_TRUE(std::find(values.begin(), values.end(), value) != values.end())
        << "value lost after joins";
  }
}

TEST(PastryOverlay, GracefulLeavePreservesData) {
  auto p = make_pastry(32);
  util::Rng rng(12);
  std::vector<Key> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(rng());
    p.insert(keys.back(), static_cast<std::uint64_t>(i));
  }
  for (net::PeerId id = 0; id < 16; ++id) p.leave(id);
  for (int i = 0; i < 64; ++i) {
    const auto values = p.get(keys[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(std::find(values.begin(), values.end(),
                          static_cast<std::uint64_t>(i)) != values.end())
        << "key " << i;
  }
}

TEST(PastryOverlay, SingleFailureSurvivedByReplicas) {
  auto p = make_pastry(32, 2, 3);
  util::Rng rng(13);
  std::vector<Key> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(rng());
    p.insert(keys.back(), static_cast<std::uint64_t>(i));
  }
  p.fail(9);
  for (int i = 0; i < 64; ++i) {
    const auto values = p.get(keys[static_cast<std::size_t>(i)]);
    EXPECT_TRUE(std::find(values.begin(), values.end(),
                          static_cast<std::uint64_t>(i)) != values.end())
        << "key " << i;
  }
}

TEST(PastryOverlay, RoutesWithStaleTablesAfterChurn) {
  auto p = make_pastry(128);
  util::Rng rng(14);
  for (net::PeerId id = 0; id < 32; ++id) p.fail(id);  // no re-stabilize
  for (int i = 0; i < 100; ++i) {
    const Key key = rng();
    const auto from = static_cast<net::PeerId>(rng.uniform_int(32, 127));
    const auto stats = p.route(key, from);
    EXPECT_EQ(stats.owner, p.owner_of(key));
  }
}

TEST(PastryOverlay, LeaveUnknownPeerIsNoop) {
  auto p = make_pastry(4);
  p.leave(99);
  p.fail(99);
  EXPECT_EQ(p.size(), 4u);
}

class PastryChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PastryChurnProperty, RoutingStaysCorrectUnderChurn) {
  util::Rng rng(util::derive_seed(GetParam(), "pastry-churn", 0));
  PastryOverlay p(GetParam(), 3);
  std::set<net::PeerId> members;
  net::PeerId next = 0;
  for (int i = 0; i < 40; ++i) {
    p.join(next);
    members.insert(next++);
  }
  p.stabilize_all();
  for (int step = 0; step < 150; ++step) {
    const auto action = rng.index(4);
    if (action == 0 || members.size() < 8) {
      p.join(next);
      members.insert(next++);
    } else if (action == 3) {
      p.stabilize_round(0.3);
    } else {
      auto it = members.begin();
      std::advance(it, static_cast<long>(rng.index(members.size())));
      if (action == 1) {
        p.leave(*it);
      } else {
        p.fail(*it);
      }
      members.erase(it);
    }
    const Key key = rng();
    auto it = members.begin();
    std::advance(it, static_cast<long>(rng.index(members.size())));
    const auto stats = p.route(key, *it);
    EXPECT_EQ(stats.owner, p.owner_of(key)) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PastryChurnProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace qsa::overlay
