// Baseline composers (random / first) and baseline aggregation algorithms.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "qsa/core/baselines.hpp"
#include "qsa/qos/satisfy.hpp"
#include "qsa/util/rng.hpp"

namespace qsa::core {
namespace {

using registry::InstanceId;
using registry::ServiceCatalog;
using registry::ServiceId;

constexpr qos::ParamId kLevel = 0;

InstanceId add_inst(ServiceCatalog& cat, ServiceId svc, double ilo, double ihi,
                    double olo, double ohi, double cpu) {
  registry::ServiceInstance inst;
  inst.service = svc;
  if (ihi >= ilo) inst.qin.set(kLevel, qos::QosValue::range(ilo, ihi));
  inst.qout.set(kLevel, qos::QosValue::range(olo, ohi));
  inst.resources = qos::ResourceVector{cpu, cpu};
  inst.bandwidth_kbps = 100;
  return cat.add_instance(inst);
}

QcsComposer make_composer(const ServiceCatalog& cat) {
  return QcsComposer(cat, qos::TupleWeights::uniform(2),
                     qos::ResourceSchema::paper());
}

qos::QosVector requirement(double lo, double hi) {
  qos::QosVector req;
  req.set(kLevel, qos::QosValue::range(lo, hi));
  return req;
}

struct TwoLayer {
  ServiceCatalog cat;
  CompositionRequest req;
  // Both chains are consistent: (srcA -> sinkA) and (srcB -> sinkB);
  // srcA->sinkB and srcB->sinkA are NOT consistent.
  InstanceId srcA, srcB, sinkA, sinkB;

  TwoLayer() {
    const auto src = cat.add_service("src");
    const auto sink = cat.add_service("sink");
    srcA = add_inst(cat, src, 1, 0, 20, 25, 10);
    srcB = add_inst(cat, src, 1, 0, 50, 55, 400);
    sinkA = add_inst(cat, sink, 18, 30, 70, 80, 10);
    sinkB = add_inst(cat, sink, 45, 60, 70, 80, 10);
    req.candidates = {{srcA, srcB}, {sinkA, sinkB}};
    req.requirement = requirement(60, 100);
  }
};

TEST(ComposeFirst, Deterministic) {
  TwoLayer t;
  auto composer = make_composer(t.cat);
  const auto r1 = compose_first(composer, t.req);
  const auto r2 = compose_first(composer, t.req);
  ASSERT_TRUE(r1.success);
  EXPECT_EQ(r1.instances, r2.instances);
}

TEST(ComposeFirst, PathIsConsistent) {
  TwoLayer t;
  auto composer = make_composer(t.cat);
  const auto r = compose_first(composer, t.req);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(qos::satisfies(t.cat.instance(r.instances[0]).qout,
                             t.cat.instance(r.instances[1]).qin));
  EXPECT_TRUE(qos::satisfies(t.cat.instance(r.instances[1]).qout,
                             t.req.requirement));
}

TEST(ComposeFirst, FailsWhenInfeasible) {
  TwoLayer t;
  t.req.requirement = requirement(90, 95);  // no sink outputs inside [90,95]
  auto composer = make_composer(t.cat);
  EXPECT_FALSE(compose_first(composer, t.req).success);
}

TEST(ComposeRandom, AlwaysReturnsConsistentPath) {
  TwoLayer t;
  auto composer = make_composer(t.cat);
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto r = compose_random(composer, t.req, rng);
    ASSERT_TRUE(r.success);
    // Only the two matched chains are consistent.
    const bool chainA = r.instances == std::vector<InstanceId>{t.srcA, t.sinkA};
    const bool chainB = r.instances == std::vector<InstanceId>{t.srcB, t.sinkB};
    EXPECT_TRUE(chainA || chainB);
  }
}

TEST(ComposeRandom, ExploresDifferentPaths) {
  TwoLayer t;
  auto composer = make_composer(t.cat);
  util::Rng rng(6);
  std::set<InstanceId> seen_sources;
  for (int i = 0; i < 100; ++i) {
    const auto r = compose_random(composer, t.req, rng);
    ASSERT_TRUE(r.success);
    seen_sources.insert(r.instances[0]);
  }
  // Unlike QCS (always the cheap chain) random picks both over 100 tries.
  EXPECT_EQ(seen_sources.size(), 2u);
}

TEST(ComposeRandom, IgnoresCost) {
  // QCS must always choose the cheap chain; random must sometimes pick the
  // expensive one (cost-blindness is its defining property).
  TwoLayer t;
  auto composer = make_composer(t.cat);
  const auto qcs = composer.compose(t.req);
  ASSERT_TRUE(qcs.success);
  EXPECT_EQ(qcs.instances, (std::vector<InstanceId>{t.srcA, t.sinkA}));

  util::Rng rng(7);
  int expensive = 0;
  for (int i = 0; i < 200; ++i) {
    const auto r = compose_random(composer, t.req, rng);
    expensive += r.instances[0] == t.srcB;
  }
  EXPECT_GT(expensive, 20);
  EXPECT_LT(expensive, 180);
}

TEST(ComposeRandom, BacktracksThroughDeadEnds) {
  // Layer structure where a naive greedy pick dead-ends: the sink accepts
  // only srcB's output, but sinkTrap (tried first when shuffled) accepts
  // nothing upstream.
  ServiceCatalog cat;
  const auto src = cat.add_service("src");
  const auto mid = cat.add_service("mid");
  const auto sink = cat.add_service("sink");
  const auto srcA = add_inst(cat, src, 1, 0, 10, 12, 10);
  // mid accepts src output, emits 30..32.
  const auto midA = add_inst(cat, mid, 5, 20, 30, 32, 10);
  // trap mid: consistent with the sink but nothing feeds it.
  const auto midTrap = add_inst(cat, mid, 90, 95, 30, 32, 10);
  const auto sinkA = add_inst(cat, sink, 25, 40, 70, 80, 10);
  CompositionRequest req;
  req.candidates = {{srcA}, {midA, midTrap}, {sinkA}};
  req.requirement = requirement(60, 100);

  auto composer = make_composer(cat);
  util::Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    const auto r = compose_random(composer, req, rng);
    ASSERT_TRUE(r.success);
    EXPECT_EQ(r.instances, (std::vector<InstanceId>{srcA, midA, sinkA}));
  }
}

TEST(ComposeRandom, CostReportedWithQcsScalarization) {
  TwoLayer t;
  auto composer = make_composer(t.cat);
  util::Rng rng(9);
  const auto r = compose_random(composer, t.req, rng);
  ASSERT_TRUE(r.success);
  double expected = 0;
  for (InstanceId id : r.instances) expected += composer.instance_cost(id);
  EXPECT_NEAR(r.cost, expected, 1e-12);
}

TEST(ComposeDfs, EmptyLayersFail) {
  ServiceCatalog cat;
  auto composer = make_composer(cat);
  util::Rng rng(10);
  CompositionRequest req;
  EXPECT_FALSE(compose_random(composer, req, rng).success);
  EXPECT_FALSE(compose_first(composer, req).success);
  req.candidates = {{}};
  req.requirement = requirement(0, 100);
  EXPECT_FALSE(compose_random(composer, req, rng).success);
}

}  // namespace
}  // namespace qsa::core
