// The textual request front end: abstract-path and QoS-requirement parsing.
#include <gtest/gtest.h>

#include "qsa/qos/satisfy.hpp"
#include "qsa/registry/spec.hpp"

namespace qsa::registry {
namespace {

struct SpecFixture : ::testing::Test {
  SpecFixture() {
    server = catalog.add_service("video-server");
    trans = catalog.add_service("transcoder");
    player = catalog.add_service("video-player");
  }
  ServiceCatalog catalog;
  ServiceId server = 0, trans = 0, player = 0;
  util::Interner params;
  util::Interner symbols;
};

// ------------------------------------------------------- abstract paths

TEST_F(SpecFixture, ParsesThreeHopPath) {
  const auto r = parse_abstract_path(
      "video-server -> transcoder -> video-player", catalog);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value, (std::vector<ServiceId>{server, trans, player}));
}

TEST_F(SpecFixture, WhitespaceInsensitive) {
  const auto r =
      parse_abstract_path("video-server->transcoder  ->   video-player",
                          catalog);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value.size(), 3u);
}

TEST_F(SpecFixture, SingleServicePath) {
  const auto r = parse_abstract_path("video-player", catalog);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value, (std::vector<ServiceId>{player}));
}

TEST_F(SpecFixture, UnknownServiceReported) {
  const auto r = parse_abstract_path("video-server -> enhancer", catalog);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("enhancer"), std::string::npos);
}

TEST_F(SpecFixture, EmptyPathRejected) {
  EXPECT_FALSE(parse_abstract_path("", catalog).ok());
  EXPECT_FALSE(parse_abstract_path("   ", catalog).ok());
}

TEST_F(SpecFixture, DanglingArrowRejected) {
  EXPECT_FALSE(parse_abstract_path("video-server ->", catalog).ok());
  EXPECT_FALSE(parse_abstract_path("-> video-server", catalog).ok());
}

TEST_F(SpecFixture, MalformedNameRejected) {
  EXPECT_FALSE(parse_abstract_path("video server", catalog).ok());
}

TEST_F(SpecFixture, FormatRoundTrips) {
  const std::vector<ServiceId> path{server, trans, player};
  const auto text = format_abstract_path(path, catalog);
  EXPECT_EQ(text, "video-server -> transcoder -> video-player");
  const auto back = parse_abstract_path(text, catalog);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value, path);
}

// --------------------------------------------------------- requirements

TEST_F(SpecFixture, ParsesRangeClause) {
  const auto r = parse_requirement("level in [70, 100]", params, symbols);
  ASSERT_TRUE(r.ok()) << r.error;
  const auto v = r.value.get(params.find("level"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, qos::QosValue::range(70, 100));
}

TEST_F(SpecFixture, ParsesSymbolClause) {
  const auto r = parse_requirement("format = MPEG", params, symbols);
  ASSERT_TRUE(r.ok()) << r.error;
  const auto v = r.value.get(params.find("format"));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, qos::QosValue::symbol(symbols.find("MPEG")));
}

TEST_F(SpecFixture, ParsesNumericClause) {
  const auto r = parse_requirement("resolution = 480", params, symbols);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(*r.value.get(params.find("resolution")), qos::QosValue::single(480));
}

TEST_F(SpecFixture, ParsesMultipleClauses) {
  const auto r = parse_requirement("level in [40,100]; format = MPEG",
                                   params, symbols);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value.dim(), 2u);
}

TEST_F(SpecFixture, CommaSeparatorOutsideBrackets) {
  const auto r = parse_requirement("format = MPEG, frame_rate in [10, 30]",
                                   params, symbols);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value.dim(), 2u);
  EXPECT_EQ(*r.value.get(params.find("frame_rate")),
            qos::QosValue::range(10, 30));
}

TEST_F(SpecFixture, EmptyRequirementIsUnconstrained) {
  const auto r = parse_requirement("", params, symbols);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value.empty());
}

TEST_F(SpecFixture, InvertedRangeRejected) {
  EXPECT_FALSE(parse_requirement("level in [90, 10]", params, symbols).ok());
}

TEST_F(SpecFixture, MalformedRangeRejected) {
  EXPECT_FALSE(parse_requirement("level in [10]", params, symbols).ok());
  EXPECT_FALSE(parse_requirement("level in 10,20", params, symbols).ok());
  EXPECT_FALSE(parse_requirement("level in [a, b]", params, symbols).ok());
}

TEST_F(SpecFixture, MissingOperatorRejected) {
  const auto r = parse_requirement("just_a_name", params, symbols);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("just_a_name"), std::string::npos);
}

TEST_F(SpecFixture, MalformedValueRejected) {
  EXPECT_FALSE(parse_requirement("format = a b", params, symbols).ok());
}

TEST_F(SpecFixture, LaterClauseOverridesEarlier) {
  const auto r = parse_requirement("level in [0,50]; level in [60,90]",
                                   params, symbols);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.value.get(params.find("level")), qos::QosValue::range(60, 90));
}

TEST_F(SpecFixture, ParsedRequirementDrivesSatisfy) {
  // A parsed requirement behaves exactly like a hand-built one.
  const auto req =
      parse_requirement("level in [60, 100]; format = H261", params, symbols);
  ASSERT_TRUE(req.ok());
  qos::QosVector out;
  out.set(params.find("level"), qos::QosValue::range(70, 80));
  out.set(params.find("format"),
          qos::QosValue::symbol(symbols.find("H261")));
  EXPECT_TRUE(qos::satisfies(out, req.value));
  qos::QosVector bad = out;
  bad.set(params.find("level"), qos::QosValue::range(40, 80));
  EXPECT_FALSE(qos::satisfies(bad, req.value));
}

}  // namespace
}  // namespace qsa::registry
