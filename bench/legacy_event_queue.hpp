// The pre-refactor event queue, kept verbatim (modulo namespace) as the
// in-binary baseline for bench_sim_throughput and the CI speedup gate
// (tools/check_sim_speedup.py). Binary heap of owning items, lazy
// cancellation through two std::unordered_set side tables, std::function
// actions — every property the slab/indexed-heap engine in qsa/sim was built
// to remove. Benchmark-only: nothing in the library links this.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "qsa/sim/time.hpp"
#include "qsa/util/expects.hpp"

namespace qsa::bench::legacy {

class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const noexcept { return seq_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::uint64_t seq) noexcept : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  EventHandle schedule(sim::SimTime at, Action action) {
    QSA_EXPECTS(action != nullptr);
    const std::uint64_t seq = next_seq_++;
    heap_.push_back(Item{at, seq, std::move(action)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    live_seqs_.insert(seq);
    ++live_;
    return EventHandle(seq);
  }

  void cancel(EventHandle h) {
    if (!h.valid()) return;
    if (live_seqs_.erase(h.seq_) == 0) return;
    cancelled_.insert(h.seq_);
    --live_;
  }

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  [[nodiscard]] sim::SimTime next_time() {
    skim();
    return heap_.empty() ? sim::SimTime::infinity() : heap_.front().time;
  }

  struct Fired {
    sim::SimTime time;
    Action action;
  };
  Fired pop() {
    skim();
    QSA_EXPECTS(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Item item = std::move(heap_.back());
    heap_.pop_back();
    live_seqs_.erase(item.seq);
    --live_;
    return Fired{item.time, std::move(item.action)};
  }

 private:
  struct Item {
    sim::SimTime time;
    std::uint64_t seq = 0;
    Action action;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      return a.time > b.time || (a.time == b.time && a.seq > b.seq);
    }
  };

  void skim() {
    while (!heap_.empty()) {
      auto it = cancelled_.find(heap_.front().seq);
      if (it == cancelled_.end()) return;
      cancelled_.erase(it);
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  std::vector<Item> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> live_seqs_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace qsa::bench::legacy
