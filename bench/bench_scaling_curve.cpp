// Scaling curve (DESIGN.md §14): one grid cell per population size N, each
// run in its own forked child so peak RSS is a per-cell measurement rather
// than the max over the whole sweep. Per-peer load is held constant —
// request and churn rates scale with N/10^4 — so the curve isolates how the
// *infrastructure* (bootstrap, peer table, reservation ledger, obs export)
// grows with population, which is what the million-peer work optimizes.
//
// Reported per cell: bootstrap/run wall ms (GridConfig::profile), peak RSS
// (VmHWM), psi, requests, the reservation ledger's live footprint
// (active_pairs) vs its monotone touched-pair counter, and the peer table's
// resident slot count. tools/check_scaling.py gates CI on the wall ceiling
// and on RSS growing no faster than the population does.
//
// Flags: --ns=N1,N2,...   populations (default 10000,100000,1000000)
//        --minutes=M      horizon per cell (default 10)
//        --rate=R         requests/min at N=10^4; scaled by N/10^4
//        --churn=C        churn events/min at N=10^4; scaled by N/10^4
//        --net-model=K    paper | coords (default coords: O(N) state)
//        --shards=K       pool shards for the order-free bootstrap phases
//                         (default 1; output identical for any K)
//        --seed=S, --json-out=FILE, --csv
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "qsa/harness/grid.hpp"
#include "qsa/metrics/table.hpp"
#include "qsa/util/flags.hpp"

namespace {

using namespace qsa;

struct CellResult {
  unsigned long long peers = 0;
  double bootstrap_ms = 0;
  double boot_peers_ms = 0;    ///< peer creation + deferred joins
  double boot_overlay_ms = 0;  ///< stabilize_all (pool at --shards>1)
  double run_ms = 0;
  unsigned long long rss_kb = 0;  ///< peak resident set (VmHWM)
  double psi = 0;
  unsigned long long requests = 0;
  unsigned long long active_pairs = 0;   ///< live ledger entries at horizon
  unsigned long long touched_pairs = 0;  ///< monotone distinct-pair counter
  unsigned long long resident_slots = 0; ///< peer-table slots still resident
};

/// Peak resident set of this process in kB: VmHWM from /proc/self/status,
/// falling back to getrusage (also kB on Linux).
unsigned long long peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    unsigned long long kb = 0;
    if (std::sscanf(line.c_str(), "VmHWM: %llu kB", &kb) == 1) return kb;
  }
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<unsigned long long>(ru.ru_maxrss);
}

harness::GridConfig make_config(std::size_t n, double minutes,
                                double base_rate, double base_churn,
                                net::NetModelKind model, std::uint64_t seed,
                                std::size_t shards) {
  harness::GridConfig cfg;
  cfg.seed = seed;
  cfg.peers = n;
  cfg.net_model = model;
  cfg.shards = shards;
  const double factor = static_cast<double>(n) / 1e4;
  cfg.requests.rate_per_min = base_rate * factor;
  cfg.churn.events_per_min = base_churn * factor;
  cfg.horizon = sim::SimTime::minutes(minutes);
  cfg.profile = true;
  return cfg;
}

/// Runs one cell in the calling (child) process and writes the measurement
/// line to `fd`.
void run_cell_child(const harness::GridConfig& cfg, int fd) {
  harness::GridSimulation grid(cfg);
  const auto r = grid.run();
  const auto& prof = grid.profile_report();
  dprintf(fd, "%llu %.3f %.3f %.3f %.3f %llu %.6f %llu %llu %llu %llu\n",
          static_cast<unsigned long long>(cfg.peers), prof.bootstrap_ms,
          prof.bootstrap_peers_ms, prof.bootstrap_overlay_ms,
          prof.run_ms, peak_rss_kb(), r.success_ratio(),
          static_cast<unsigned long long>(r.requests),
          static_cast<unsigned long long>(grid.network().active_pairs()),
          static_cast<unsigned long long>(grid.network().touched_pairs()),
          static_cast<unsigned long long>(grid.peers().resident_slots()));
}

bool run_cell(const harness::GridConfig& cfg, CellResult& out) {
  int fds[2];
  if (pipe(fds) != 0) {
    std::perror("pipe");
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return false;
  }
  if (pid == 0) {
    close(fds[0]);
    run_cell_child(cfg, fds[1]);
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  FILE* in = fdopen(fds[0], "r");
  const int parsed =
      in == nullptr
          ? 0
          : std::fscanf(in, "%llu %lf %lf %lf %lf %llu %lf %llu %llu %llu %llu",
                        &out.peers, &out.bootstrap_ms, &out.boot_peers_ms,
                        &out.boot_overlay_ms, &out.run_ms,
                        &out.rss_kb, &out.psi, &out.requests,
                        &out.active_pairs, &out.touched_pairs,
                        &out.resident_slots);
  if (in != nullptr) std::fclose(in);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "cell N=%zu: child failed (status %d)\n", cfg.peers,
                 status);
    return false;
  }
  return parsed == 11;
}

std::vector<std::size_t> parse_ns(const std::string& list) {
  std::vector<std::size_t> ns;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t next = list.find(',', pos);
    if (next == std::string::npos) next = list.size();
    const std::string tok = list.substr(pos, next - pos);
    if (!tok.empty()) ns.push_back(std::stoull(tok));
    pos = next + 1;
  }
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto ns = parse_ns(flags.get("ns", "10000,100000,1000000"));
  const double minutes = flags.get_double("minutes", 10);
  const double base_rate = flags.get_double("rate", 100);
  const double base_churn = flags.get_double("churn", 10);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const std::string json_out = flags.get("json-out", "");
  const bool csv = flags.get_bool("csv", false);
  static constexpr util::Choice<net::NetModelKind> kNetModels[] = {
      {"paper", net::NetModelKind::kPaper},
      {"coords", net::NetModelKind::kCoords},
  };
  const net::NetModelKind model =
      util::get_choice(flags, "net-model", kNetModels,
                       net::NetModelKind::kCoords, "bench_scaling_curve");
  const auto shards = static_cast<std::size_t>(flags.get_int("shards", 1));
  const std::string model_name(net::to_string(model));
  util::reject_unknown_flags(flags, "bench_scaling_curve");
  if (ns.empty()) {
    std::fprintf(stderr, "--ns must name at least one population\n");
    return 2;
  }

  std::printf("=== Scaling curve: wall/RSS/footprints vs population ===\n");
  std::printf("net model %s, %.4g min horizon, %.4g req/min and %.4g "
              "churn/min per 10^4 peers, %zu shard(s), seed %llu\n\n",
              model_name.c_str(), minutes, base_rate, base_churn, shards,
              static_cast<unsigned long long>(seed));

  std::vector<CellResult> cells;
  for (const std::size_t n : ns) {
    const auto cfg =
        make_config(n, minutes, base_rate, base_churn, model, seed, shards);
    CellResult cell;
    if (!run_cell(cfg, cell)) return 1;
    std::printf("N=%-9llu bootstrap %9.1f ms (joins %8.1f, overlay %8.1f)  "
                "run %9.1f ms  rss %8llu kB  psi %.3f\n",
                cell.peers, cell.bootstrap_ms, cell.boot_peers_ms,
                cell.boot_overlay_ms, cell.run_ms, cell.rss_kb, cell.psi);
    cells.push_back(cell);
  }
  std::printf("\n");

  metrics::Table table({"peers", "bootstrap_ms", "boot_peers_ms",
                        "boot_overlay_ms", "run_ms", "rss_kb", "psi",
                        "requests", "active_pairs", "touched_pairs",
                        "resident_slots"});
  for (const auto& c : cells) {
    table.add_row({metrics::Table::num(static_cast<double>(c.peers), 0),
                   metrics::Table::num(c.bootstrap_ms, 1),
                   metrics::Table::num(c.boot_peers_ms, 1),
                   metrics::Table::num(c.boot_overlay_ms, 1),
                   metrics::Table::num(c.run_ms, 1),
                   metrics::Table::num(static_cast<double>(c.rss_kb), 0),
                   metrics::Table::num(c.psi, 3),
                   metrics::Table::num(static_cast<double>(c.requests), 0),
                   metrics::Table::num(static_cast<double>(c.active_pairs), 0),
                   metrics::Table::num(static_cast<double>(c.touched_pairs), 0),
                   metrics::Table::num(static_cast<double>(c.resident_slots),
                                       0)});
  }
  table.print(std::cout);
  if (csv) {
    std::printf("\n--- CSV ---\n");
    table.print_csv(std::cout);
  }

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "cannot open --json-out file %s\n",
                   json_out.c_str());
      return 1;
    }
    os << "{\"bench\":\"bench_scaling_curve\",\"net_model\":\"" << model_name
       << "\",\"minutes\":" << minutes << ",\"seed\":" << seed
       << ",\"shards\":" << shards << ",\"cells\":[";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto& c = cells[i];
      if (i > 0) os << ',';
      os << "{\"peers\":" << c.peers << ",\"bootstrap_ms\":" << c.bootstrap_ms
         << ",\"boot_peers_ms\":" << c.boot_peers_ms
         << ",\"boot_overlay_ms\":" << c.boot_overlay_ms
         << ",\"run_ms\":" << c.run_ms << ",\"rss_kb\":" << c.rss_kb
         << ",\"psi\":" << c.psi << ",\"requests\":" << c.requests
         << ",\"active_pairs\":" << c.active_pairs
         << ",\"touched_pairs\":" << c.touched_pairs
         << ",\"resident_slots\":" << c.resident_slots << '}';
    }
    os << "]}\n";
    std::printf("\njson report -> %s\n", json_out.c_str());
  }
  return 0;
}
