// Figure 8: success ratio fluctuation within a 60-minute run under churn:
// request rate = 100 req/min, topological variation = 100 peers/min.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto cfg = bench::paper_config(opt);
  cfg.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  cfg.sample_period = sim::SimTime::minutes(2);
  cfg.requests.rate_per_min = flags.get_double("rate", 100) * opt.scale;
  cfg.churn.events_per_min = flags.get_double("churn", 100) * opt.scale;
  util::reject_unknown_flags(flags, "fig8_churn_timeseries");

  bench::print_header(
      "Figure 8: success ratio fluctuation under churn",
      "10^4 peers, 60 min, rate = 100 req/min, churn = 100 peers/min", opt,
      cfg);

  auto cells = harness::algorithm_comparison(cfg);
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("fig8_churn_timeseries", results, opt);

  metrics::Table table({"minute", "psi_qsa", "psi_random", "psi_fixed"});
  const auto& qsa_s = results[0].result.series.samples();
  const auto& rnd_s = results[1].result.series.samples();
  const auto& fix_s = results[2].result.series.samples();
  const std::size_t n = std::min({qsa_s.size(), rnd_s.size(), fix_s.size()});
  for (std::size_t i = 0; i < n; ++i) {
    table.add_row({metrics::Table::num(qsa_s[i].time.as_minutes(), 0),
                   metrics::Table::num(qsa_s[i].value, 3),
                   metrics::Table::num(rnd_s[i].value, 3),
                   metrics::Table::num(fix_s[i].value, 3)});
  }
  bench::emit(table, opt);

  int qsa_wins = 0;
  for (std::size_t i = 0; i < n; ++i) {
    qsa_wins += qsa_s[i].value + 1e-9 >= rnd_s[i].value;
  }
  std::printf("shape: QSA >= random in %d/%zu windows under churn\n",
              qsa_wins, n);
  std::printf(
      "departure-induced failures: qsa=%llu random=%llu fixed=%llu\n",
      static_cast<unsigned long long>(results[0].result.failures_departure),
      static_cast<unsigned long long>(results[1].result.failures_departure),
      static_cast<unsigned long long>(results[2].result.failures_departure));
  return 0;
}
