// Observability overhead budget (DESIGN.md §12): the streaming obs pipeline
// must stay cheap enough to leave on — obs-on wall time within a small
// factor of obs-off, and resident obs memory O(active requests), i.e. flat
// when the run gets longer. This bench measures both and emits a JSON
// report for tools/check_obs_overhead.py, which gates CI on:
//
//   * wall overhead: obs-on (1-in-K sampling + flight recorder + live
//     series, streamed through real JSONL/CSV sinks into a null stream)
//     vs obs-off on the same cell, min-of-N repeats each;
//   * memory growth: the tracer's peak resident span count at 1x vs 10x
//     the request volume (10x the horizon at steady-state arrival rate) —
//     bounded memory means the high-water mark barely moves while total
//     spans grow ~10x.
//
// Flags (besides the bench_common set): --minutes=N (1x horizon, default
// 60 — long enough for the session population to reach steady state, so
// the 1x high-water is a real baseline), --repeats=N (wall repeats, default
// 3), --trace-sample=K (default 8), --json-out=FILE (the machine-readable
// report).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <streambuf>
#include <string>

#include "bench_common.hpp"
#include "qsa/harness/grid.hpp"
#include "qsa/obs/sink.hpp"

namespace {

/// Discards everything: the obs-on cells pay full serialization through the
/// real chunked sinks without the bench buffering (or writing) a whole run.
struct NullBuf final : std::streambuf {
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override { return n; }
};

struct CellStats {
  double wall_ms = 0;  ///< min over repeats
  std::uint64_t requests = 0;
  std::uint64_t spans_emitted = 0;
  std::uint64_t sampled_requests = 0;
  std::size_t high_water = 0;  ///< peak resident spans (0 when obs off)
};

CellStats run_cell(const qsa::harness::GridConfig& cfg, int repeats) {
  CellStats out;
  for (int rep = 0; rep < repeats; ++rep) {
    NullBuf buf;
    std::ostream null_os(&buf);
    qsa::harness::GridSimulation grid(cfg);
    qsa::obs::JsonlSpanSink trace(null_os);
    qsa::obs::CsvMetricSink series(null_os);
    if (cfg.observe) {
      grid.set_span_sink(&trace);
      grid.set_series_sink(&series);
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = grid.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (rep == 0 || ms < out.wall_ms) out.wall_ms = ms;
    out.requests = result.requests;
    if (grid.tracer() != nullptr) {
      out.spans_emitted = grid.tracer()->emitted_spans();
      out.sampled_requests = grid.tracer()->sampled_requests();
      out.high_water = grid.tracer()->peak_live_spans();
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto off = bench::paper_config(opt);
  off.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  off.enable_recovery = true;
  off.admission_retries = 1;

  auto on = off;
  on.observe = true;
  on.trace_sample =
      static_cast<std::uint32_t>(flags.get_int("trace-sample", 8));
  on.flight_recorder = 8;
  on.obs_window = sim::SimTime::minutes(2);

  auto on_10x = on;
  on_10x.horizon = sim::SimTime::millis(on.horizon.as_millis() * 10);

  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  const std::string json_out = flags.get("json-out", "");
  util::reject_unknown_flags(flags, "bench_obs_overhead");

  bench::print_header(
      "Observability overhead: streaming trace/series pipeline vs obs off",
      "same cell obs-off vs obs-on (sampled trace + flight recorder + live "
      "series); resident spans at 1x vs 10x request volume",
      opt, off);

  const CellStats s_off = run_cell(off, repeats);
  const CellStats s_on = run_cell(on, repeats);
  const CellStats s_10x = run_cell(on_10x, 1);

  const double overhead = s_on.wall_ms / s_off.wall_ms;
  const double growth =
      s_on.high_water > 0
          ? static_cast<double>(s_10x.high_water) /
                static_cast<double>(s_on.high_water)
          : 0.0;

  std::printf("%-28s %10s %10s %12s %12s\n", "cell", "wall ms", "requests",
              "spans", "peak spans");
  std::printf("%-28s %10.1f %10llu %12s %12s\n", "obs off (1x)", s_off.wall_ms,
              static_cast<unsigned long long>(s_off.requests), "-", "-");
  std::printf("%-28s %10.1f %10llu %12llu %12zu\n", "obs on (1x)", s_on.wall_ms,
              static_cast<unsigned long long>(s_on.requests),
              static_cast<unsigned long long>(s_on.spans_emitted),
              s_on.high_water);
  std::printf("%-28s %10.1f %10llu %12llu %12zu\n", "obs on (10x)",
              s_10x.wall_ms, static_cast<unsigned long long>(s_10x.requests),
              static_cast<unsigned long long>(s_10x.spans_emitted),
              s_10x.high_water);
  std::printf("\nwall overhead obs-on/obs-off : %.3fx (min of %d repeats)\n",
              overhead, repeats);
  std::printf("peak-span growth at 10x load : %.3fx (%zu -> %zu)\n", growth,
              s_on.high_water, s_10x.high_water);

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "cannot open --json-out file %s\n",
                   json_out.c_str());
      return 1;
    }
    os << "{\"bench\":\"bench_obs_overhead\""
       << ",\"scale\":" << opt.scale << ",\"seed\":" << opt.seed
       << ",\"repeats\":" << repeats
       << ",\"trace_sample\":" << on.trace_sample << ",\"wall\":{"
       << "\"off_ms\":" << s_off.wall_ms << ",\"on_ms\":" << s_on.wall_ms
       << ",\"overhead\":" << overhead << "},\"memory\":{"
       << "\"requests_1x\":" << s_on.requests
       << ",\"requests_10x\":" << s_10x.requests
       << ",\"high_water_1x\":" << s_on.high_water
       << ",\"high_water_10x\":" << s_10x.high_water
       << ",\"growth\":" << growth << "},\"trace\":{"
       << "\"spans_emitted_1x\":" << s_on.spans_emitted
       << ",\"sampled_requests_1x\":" << s_on.sampled_requests << "}}\n";
    std::printf("json report -> %s\n", json_out.c_str());
  }
  return 0;
}
