// Microbenchmarks (google-benchmark) for the core algorithms and hot
// substrate paths:
//   * the eq. 1 satisfy check,
//   * QCS composition vs layer width K (the paper's O(K V^2) bound),
//   * one peer-selection step vs candidate count,
//   * Chord lookups vs ring size (hop counts ~ log N),
//   * event-queue throughput and the pairwise network draw.
#include <benchmark/benchmark.h>

#include <vector>

#include "qsa/core/compose.hpp"
#include "qsa/core/select.hpp"
#include "qsa/net/network.hpp"
#include "qsa/overlay/can_overlay.hpp"
#include "qsa/overlay/chord_ring.hpp"
#include "qsa/overlay/pastry_overlay.hpp"
#include "qsa/qos/satisfy.hpp"
#include "qsa/sim/event_queue.hpp"
#include "qsa/util/rng.hpp"

namespace {

using namespace qsa;

constexpr qos::ParamId kLevel = 0;
constexpr qos::ParamId kFormat = 1;

qos::QosVector make_vec(util::Rng& rng) {
  qos::QosVector v;
  const double lo = rng.uniform(0, 80);
  v.set(kLevel, qos::QosValue::range(lo, lo + rng.uniform(1, 20)));
  v.set(kFormat, qos::QosValue::symbol(static_cast<qos::Symbol>(rng.index(4))));
  return v;
}

void BM_SatisfyCheck(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<std::pair<qos::QosVector, qos::QosVector>> pairs;
  for (int i = 0; i < 256; ++i) pairs.emplace_back(make_vec(rng), make_vec(rng));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [out, in] = pairs[i++ & 255];
    benchmark::DoNotOptimize(qos::satisfies(out, in));
  }
}
BENCHMARK(BM_SatisfyCheck);

/// Builds a composable L-layer catalog with K instances per layer.
struct ComposeSetup {
  registry::ServiceCatalog catalog;
  core::CompositionRequest request;

  ComposeSetup(int layers, int k) {
    util::Rng rng(7);
    for (int l = 0; l < layers; ++l) {
      const auto svc = catalog.add_service("svc");
      std::vector<registry::InstanceId> layer;
      for (int i = 0; i < k; ++i) {
        registry::ServiceInstance inst;
        inst.service = svc;
        if (l > 0) {
          inst.qin.set(kLevel, qos::QosValue::range(0, 100));  // accepts all
        }
        const double lo = rng.uniform(10, 80);
        inst.qout.set(kLevel, qos::QosValue::range(lo, lo + 10));
        inst.resources = qos::ResourceVector{rng.uniform(5, 100),
                                             rng.uniform(5, 100)};
        inst.bandwidth_kbps = rng.uniform(40, 400);
        layer.push_back(catalog.add_instance(inst));
      }
      request.candidates.push_back(std::move(layer));
    }
    request.requirement.set(kLevel, qos::QosValue::range(0, 100));
  }
};

void BM_QcsCompose(benchmark::State& state) {
  const int layers = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  ComposeSetup setup(layers, k);
  core::QcsComposer composer(setup.catalog, qos::TupleWeights::uniform(2),
                             qos::ResourceSchema::paper());
  std::size_t edges = 0, nodes_checked = 0;
  for (auto _ : state) {
    const auto result = composer.compose(setup.request);
    edges = result.edges_examined;
    nodes_checked = result.nodes_checked;
    benchmark::DoNotOptimize(result.cost);
  }
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["nodes_checked"] = static_cast<double>(nodes_checked);
  state.SetComplexityN(layers * k * k);
}
BENCHMARK(BM_QcsCompose)
    ->Args({2, 10})
    ->Args({3, 15})
    ->Args({5, 15})
    ->Args({5, 20})
    ->Args({5, 40});

/// BM_QcsCompose with the qsa::cache memo tables attached — the steady-state
/// cost of recomposing over a warm catalog (the grid's common case: many
/// requests, one catalog). Compare against BM_QcsCompose per Args row for
/// the cached/uncached throughput ratio.
void BM_QcsComposeCached(benchmark::State& state) {
  const int layers = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  ComposeSetup setup(layers, k);
  core::QcsComposer composer(setup.catalog, qos::TupleWeights::uniform(2),
                             qos::ResourceSchema::paper());
  cache::ComposeCache cache;
  composer.set_cache(&cache);
  std::size_t edges = 0, nodes_checked = 0;
  for (auto _ : state) {
    const auto result = composer.compose(setup.request);
    edges = result.edges_examined;
    nodes_checked = result.nodes_checked;
    benchmark::DoNotOptimize(result.cost);
  }
  state.counters["edges"] = static_cast<double>(edges);
  state.counters["nodes_checked"] = static_cast<double>(nodes_checked);
  state.SetComplexityN(layers * k * k);
}
BENCHMARK(BM_QcsComposeCached)
    ->Args({2, 10})
    ->Args({3, 15})
    ->Args({5, 15})
    ->Args({5, 20})
    ->Args({5, 40});

void BM_PeerSelectionStep(benchmark::State& state) {
  const auto candidates_n = static_cast<std::size_t>(state.range(0));
  net::PeerTable peers(qos::ResourceSchema::paper(),
                       net::ProbeClock(sim::SimTime::seconds(30)));
  net::NetworkModel net(1, net::ProbeClock(sim::SimTime::seconds(30)));
  probe::NeighborTable table(candidates_n + 10);
  util::Rng rng(5);

  const net::PeerId me =
      peers.add_peer(qos::ResourceVector{500, 500}, sim::SimTime::minutes(-60));
  std::vector<net::PeerId> candidates;
  for (std::size_t i = 0; i < candidates_n; ++i) {
    const double cap = rng.uniform(100, 1000);
    const auto p = peers.add_peer(qos::ResourceVector{cap, cap},
                                  sim::SimTime::minutes(-rng.uniform(1, 120)));
    table.add(p, 1, probe::NeighborKind::kDirect, sim::SimTime::zero(),
              sim::SimTime::minutes(120));
    candidates.push_back(p);
  }
  registry::ServiceInstance inst;
  inst.resources = qos::ResourceVector{40, 40};
  inst.bandwidth_kbps = 50;
  core::PeerSelector selector(qos::TupleWeights::uniform(2),
                              qos::ResourceSchema::paper());
  for (auto _ : state) {
    const auto sel =
        selector.select_hop(peers, net, table, me, inst, candidates,
                            sim::SimTime::minutes(30), sim::SimTime::zero(), rng);
    benchmark::DoNotOptimize(sel.peer);
  }
}
BENCHMARK(BM_PeerSelectionStep)->Arg(10)->Arg(40)->Arg(80)->Arg(160);

void BM_CanLookup(benchmark::State& state) {
  const auto nodes = static_cast<net::PeerId>(state.range(0));
  overlay::CanOverlay can(3, 2);
  for (net::PeerId p = 0; p < nodes; ++p) can.join(p);
  util::Rng rng(9);
  std::int64_t hops = 0, lookups = 0;
  for (auto _ : state) {
    const auto stats =
        can.route(rng(), static_cast<net::PeerId>(rng.index(nodes)));
    hops += stats.hops;
    ++lookups;
    benchmark::DoNotOptimize(stats.owner);
  }
  state.counters["avg_hops"] =
      static_cast<double>(hops) / static_cast<double>(lookups);
}
BENCHMARK(BM_CanLookup)->Arg(128)->Arg(1024)->Arg(8192);

void BM_PastryLookup(benchmark::State& state) {
  const auto nodes = static_cast<net::PeerId>(state.range(0));
  overlay::PastryOverlay pastry(3, 2);
  for (net::PeerId p = 0; p < nodes; ++p) pastry.join(p);
  pastry.stabilize_all();
  util::Rng rng(9);
  std::int64_t hops = 0, lookups = 0;
  for (auto _ : state) {
    const auto stats =
        pastry.route(rng(), static_cast<net::PeerId>(rng.index(nodes)));
    hops += stats.hops;
    ++lookups;
    benchmark::DoNotOptimize(stats.owner);
  }
  state.counters["avg_hops"] =
      static_cast<double>(hops) / static_cast<double>(lookups);
}
BENCHMARK(BM_PastryLookup)->Arg(128)->Arg(1024)->Arg(8192);

void BM_ChordLookup(benchmark::State& state) {
  const auto nodes = static_cast<net::PeerId>(state.range(0));
  overlay::ChordRing ring(3, 2);
  for (net::PeerId p = 0; p < nodes; ++p) ring.join(p);
  ring.stabilize_all();
  util::Rng rng(9);
  std::int64_t hops = 0, lookups = 0;
  for (auto _ : state) {
    const auto stats = ring.route(rng(), static_cast<net::PeerId>(rng.index(nodes)));
    hops += stats.hops;
    ++lookups;
    benchmark::DoNotOptimize(stats.owner);
  }
  state.counters["avg_hops"] =
      static_cast<double>(hops) / static_cast<double>(lookups);
}
BENCHMARK(BM_ChordLookup)->Arg(128)->Arg(1024)->Arg(8192);

void BM_EventQueueThroughput(benchmark::State& state) {
  sim::EventQueue q;
  util::Rng rng(11);
  std::int64_t t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.schedule(sim::SimTime::millis(t + static_cast<std::int64_t>(rng.index(1000))),
                 [] {});
    }
    for (int i = 0; i < 64; ++i) {
      auto fired = q.pop();
      t = fired.time.as_millis();
    }
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_NetworkPairDraw(benchmark::State& state) {
  net::NetworkModel net(1, net::ProbeClock(sim::SimTime::seconds(30)));
  util::Rng rng(13);
  for (auto _ : state) {
    const auto a = static_cast<net::PeerId>(rng.index(10'000));
    const auto b = static_cast<net::PeerId>(rng.index(10'000));
    benchmark::DoNotOptimize(net.capacity_kbps(a, b));
    benchmark::DoNotOptimize(net.latency(a, b));
  }
}
BENCHMARK(BM_NetworkPairDraw);

}  // namespace

BENCHMARK_MAIN();
