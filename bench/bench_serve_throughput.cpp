// Serving-mode throughput of the sim-free qsa::engine facade (DESIGN.md
// §13): the compose+select hot path driven at request-loop speed instead of
// simulated time, across 1/2/4 shard threads. Feeds
// tools/check_serve_throughput.py, which gates CI on:
//
//   * a (loose) QPS floor on every thread count — the facade must sustain
//     serving-class throughput, not just pass the simulator's workload;
//   * zero steady-state hot-path allocations — after warmup, a
//     frozen-clock shard serves entirely out of grow-only scratch, the
//     discovery cache, and the neighbor tables. The whole binary's
//     operator new is replaced with a counting hook; the counter is
//     snapshotted at the warmup/measured barrier and must not move.
//
// The world (peers, WAN, ring, catalog, placement) is built once by
// GridSimulation — construct only, never run() — and shared read-only by
// every shard. Each shard owns the per-requester soft state: a directory
// view (its discovery cache), neighbor tables, a ManualClock, and the
// engine (algorithm + scratch). The shard directory's seed MUST be the
// grid's directory label — derive_seed(seed, "directory", 0) — so its keys
// match what bootstrap published into the ring.
//
// Flags (besides the bench_common set): --requests=N (counted per shard,
// default 20000), --pool=N (distinct pregenerated requests per shard,
// default 512), --warmup=N (default 2x pool: every pooled request is
// served at least twice before measuring), --batch=N (requests per clock
// tick, default 64), --tick-ms=N (clock advance per batch, default 0 =
// frozen clock, the zero-allocation configuration), --probe-budget=M
// (neighbor-table budget, default 4096 — large enough that steady-state
// refreshes never evict), --json-out=FILE.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "qsa/engine/engine.hpp"
#include "qsa/engine/serve.hpp"
#include "qsa/harness/grid.hpp"
#include "qsa/obs/histogram.hpp"
#include "qsa/probe/resolution.hpp"
#include "qsa/registry/directory.hpp"
#include "qsa/util/rng.hpp"
#include "qsa/workload/apps.hpp"

// --- global allocation counter ------------------------------------------
// Replacing operator new/delete for the whole bench binary: every heap
// allocation on any thread bumps the counter, so the steady-state window
// (snapshotted at the warmup barrier) measures the true hot path.
namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace qsa;

/// The per-shard request pool, mirroring the simulator workload's fire()
/// recipe (app, QoS level, requester, duration) on an independent stream.
std::vector<core::ServiceRequest> make_pool(harness::GridSimulation& grid,
                                            std::uint64_t seed,
                                            std::size_t shard,
                                            std::size_t count) {
  util::Rng rng(util::derive_seed(seed, "serve-requests", shard));
  const auto& alive = grid.peers().alive_ids();
  const auto apps = grid.apps().apps();
  std::vector<core::ServiceRequest> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const workload::Application& app = apps[rng.index(apps.size())];
    const auto level = static_cast<workload::QosLevel>(rng.index(3));
    core::ServiceRequest req;
    req.requester = alive[rng.index(alive.size())];
    req.abstract_path = app.path;
    req.requirement = workload::requirement_for(level, grid.universe());
    req.session_duration = sim::SimTime::minutes(rng.uniform(1.0, 60.0));
    pool.push_back(std::move(req));
  }
  return pool;
}

/// One shard's serving state: the per-requester soft-state pieces the
/// engine needs exclusively, over the grid's shared immutable world.
struct Shard {
  Shard(harness::GridSimulation& grid, std::uint64_t seed, std::size_t index,
        std::size_t probe_budget, std::size_t pool_size)
      : directory(util::derive_seed(seed, "directory", 0), grid.ring(),
                  grid.catalog()),
        neighbors(probe_budget, grid.config().neighbor_ttl),
        pool(make_pool(grid, seed, index, pool_size)) {
    engine::EngineConfig ec;
    ec.seed = util::derive_seed(seed, "serve-shard", index);
    ec.algorithm = engine::AlgorithmKind::kQsa;
    // Frozen clock => every cached discovery stays fresh for the whole
    // measured phase; any positive TTL behaves identically.
    ec.discovery_cache_ttl = sim::SimTime::minutes(10);
    engine::EngineDeps deps;
    deps.catalog = &grid.catalog();
    deps.placement = &grid.placement();
    deps.directory = &directory;
    deps.peers = &grid.peers();
    deps.net = &grid.network();
    deps.neighbors = &neighbors;
    deps.clock = &clock;
    engine = std::make_unique<engine::ServingEngine>(ec, deps);
  }

  registry::ServiceDirectory directory;
  probe::NeighborResolution neighbors;
  engine::ManualClock clock;
  std::vector<core::ServiceRequest> pool;
  std::unique_ptr<engine::ServingEngine> engine;
  obs::Histogram latency_us;
};

struct CellResult {
  std::size_t threads = 0;
  engine::ServeStats stats;
  double wall_ms = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t steady_allocs = 0;
};

CellResult run_cell(harness::GridSimulation& grid, std::uint64_t seed,
                    std::size_t threads, std::uint64_t requests,
                    std::uint64_t warmup, std::size_t pool_size,
                    std::size_t batch, sim::SimTime tick,
                    std::size_t probe_budget) {
  std::vector<std::unique_ptr<Shard>> shards;
  std::vector<engine::ShardLoop> loops;
  shards.reserve(threads);
  loops.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    shards.push_back(
        std::make_unique<Shard>(grid, seed, i, probe_budget, pool_size));
    engine::ShardLoop loop;
    loop.engine = shards.back()->engine.get();
    loop.clock = &shards.back()->clock;
    loop.pool = shards.back()->pool;
    loop.warmup = warmup;
    loop.requests = requests;
    loop.batch = batch;
    loop.tick = tick;
    loop.latency_us = &shards.back()->latency_us;
    loops.push_back(loop);
  }

  std::uint64_t allocs_at_steady = 0;
  std::chrono::steady_clock::time_point t0;
  const engine::ServeStats stats =
      engine::serve_parallel(loops, [&]() noexcept {
        allocs_at_steady = g_news.load(std::memory_order_relaxed);
        t0 = std::chrono::steady_clock::now();
      });
  const std::uint64_t allocs_after = g_news.load(std::memory_order_relaxed);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  obs::Histogram merged;
  for (const auto& s : shards) merged.merge(s->latency_us);

  CellResult cell;
  cell.threads = threads;
  cell.stats = stats;
  cell.wall_ms = wall_ms;
  cell.qps = wall_ms > 0 ? static_cast<double>(stats.requests) * 1000.0 /
                               wall_ms
                         : 0;
  cell.p50_us = merged.p50();
  cell.p99_us = merged.p99();
  cell.steady_allocs = allocs_after - allocs_at_steady;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  const auto requests =
      static_cast<std::uint64_t>(flags.get_int("requests", 20'000));
  const auto pool_size = static_cast<std::size_t>(flags.get_int("pool", 512));
  const auto warmup = static_cast<std::uint64_t>(
      flags.get_int("warmup", static_cast<std::int64_t>(2 * pool_size)));
  const auto batch = static_cast<std::size_t>(flags.get_int("batch", 64));
  const sim::SimTime tick = sim::SimTime::millis(flags.get_int("tick-ms", 0));
  const auto probe_budget =
      static_cast<std::size_t>(flags.get_int("probe-budget", 4096));
  const std::string json_out = flags.get("json-out", "");
  util::reject_unknown_flags(flags, "bench_serve_throughput");

  auto cfg = bench::paper_config(opt);
  bench::print_header(
      "Serving throughput: qsa::engine compose+select at request-loop speed",
      "shared immutable world, thread-per-shard engines, frozen clock, "
      "batched request pool",
      opt, cfg);

  // World construction only — run() is never called; the serving loops
  // replace the discrete-event workload.
  harness::GridSimulation grid(cfg);

  const std::size_t thread_counts[] = {1, 2, 4};
  std::vector<CellResult> cells;
  for (std::size_t threads : thread_counts) {
    cells.push_back(run_cell(grid, opt.seed, threads, requests, warmup,
                             pool_size, batch, tick, probe_budget));
  }

  std::printf("%8s %12s %10s %10s %10s %10s %12s\n", "threads", "QPS",
              "wall ms", "psi", "p50 us", "p99 us", "steady allocs");
  for (const CellResult& c : cells) {
    std::printf("%8zu %12.0f %10.1f %10.4f %10.2f %10.2f %12llu\n", c.threads,
                c.qps, c.wall_ms, c.stats.success_ratio(), c.p50_us, c.p99_us,
                static_cast<unsigned long long>(c.steady_allocs));
  }

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "cannot open --json-out file %s\n",
                   json_out.c_str());
      return 1;
    }
    os << "{\"bench\":\"bench_serve_throughput\""
       << ",\"scale\":" << opt.scale << ",\"seed\":" << opt.seed
       << ",\"requests_per_thread\":" << requests << ",\"pool\":" << pool_size
       << ",\"warmup\":" << warmup << ",\"batch\":" << batch
       << ",\"tick_ms\":" << tick.as_millis()
       << ",\"probe_budget\":" << probe_budget << ",\"cells\":[";
    bool first = true;
    for (const CellResult& c : cells) {
      if (!first) os << ',';
      first = false;
      os << "{\"threads\":" << c.threads << ",\"qps\":" << c.qps
         << ",\"wall_ms\":" << c.wall_ms
         << ",\"requests\":" << c.stats.requests << ",\"ok\":" << c.stats.ok
         << ",\"success_ratio\":" << c.stats.success_ratio()
         << ",\"fail_discovery\":" << c.stats.fail_discovery
         << ",\"fail_composition\":" << c.stats.fail_composition
         << ",\"fail_selection\":" << c.stats.fail_selection
         << ",\"lookup_hops\":" << c.stats.lookup_hops
         << ",\"random_fallback_hops\":" << c.stats.random_fallback_hops
         << ",\"p50_us\":" << c.p50_us << ",\"p99_us\":" << c.p99_us
         << ",\"steady_allocs\":" << c.steady_allocs << '}';
    }
    os << "]}\n";
    std::printf("json report -> %s\n", json_out.c_str());
  }
  return 0;
}
