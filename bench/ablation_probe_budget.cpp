// Ablation: sensitivity of psi to the probing budget M (the paper fixes
// M = 100 to cap probing overhead at 1% of a 10^4-peer grid). Small budgets
// force the selector into its random fallback for candidates it cannot
// probe.
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  base.requests.rate_per_min = flags.get_double("rate", 400) * opt.scale;
  base.churn.events_per_min = 0;
  base.algorithm = harness::AlgorithmKind::kQsa;

  const std::vector<double> budgets =
      util::parse_double_list(flags.get("budgets", "5,10,25,50,100,200"));
  util::reject_unknown_flags(flags, "ablation_probe_budget");

  bench::print_header("Ablation: probe budget M",
                      "paper fixes M = 100 (1% probing overhead)", opt, base);

  std::vector<harness::ExperimentCell> cells;
  for (double m : budgets) {
    auto cfg = base;
    cfg.probe_budget = static_cast<std::size_t>(m);
    cells.push_back(
        harness::ExperimentCell{"M=" + metrics::Table::num(m, 0), cfg});
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("ablation_probe_budget", results, opt);

  metrics::Table table({"M", "psi_pct", "random_fallback_hops_per_req",
                        "notify_msgs_per_req"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i].result;
    const double reqs =
        static_cast<double>(std::max<std::uint64_t>(1, r.requests));
    table.add_row(
        {metrics::Table::num(budgets[i], 0),
         metrics::Table::num(100 * r.success_ratio(), 1),
         metrics::Table::num(static_cast<double>(r.random_fallback_hops) / reqs,
                             3),
         metrics::Table::num(
             static_cast<double>(r.notification_messages) / reqs, 0)});
  }
  bench::emit(table, opt);

  std::printf("shape: tight budgets force more random fallbacks: %s\n",
              results.front().result.random_fallback_hops >
                      results.back().result.random_fallback_hops
                  ? "yes"
                  : "NO");
  return 0;
}
