// Ablation: how much does each of QSA's two tiers contribute?
//   full        = QCS composition + smart peer selection (the paper's QSA)
//   compose-only= QCS composition + random peers
//   select-only = random consistent path + smart peer selection
//   neither     = random path + random peers (the `random` baseline)
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 100));
  base.requests.rate_per_min = flags.get_double("rate", 400) * opt.scale;
  util::reject_unknown_flags(flags, "ablation_tiers");
  base.churn.events_per_min = 0;

  bench::print_header(
      "Ablation: QSA tier contributions",
      "10^4 peers, 100 min, rate = 400 req/min, no churn (design-choice study)",
      opt, base);

  struct Variant {
    const char* name;
    core::QsaOptions options;
  };
  const Variant variants[] = {
      {"full", {}},
      {"compose-only", {.qcs_composition = true, .smart_selection = false}},
      {"select-only", {.qcs_composition = false, .smart_selection = true}},
      {"neither", {.qcs_composition = false, .smart_selection = false}},
  };

  std::vector<harness::ExperimentCell> cells;
  for (const auto& v : variants) {
    auto cfg = base;
    cfg.algorithm = harness::AlgorithmKind::kQsa;
    cfg.qsa_options = v.options;
    cells.push_back(harness::ExperimentCell{v.name, cfg});
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("ablation_tiers", results, opt);

  metrics::Table table(
      {"variant", "psi_pct", "avg_composition_cost", "admission_failures"});
  for (const auto& r : results) {
    table.add_row({r.label,
                   metrics::Table::num(100 * r.result.success_ratio(), 1),
                   metrics::Table::num(r.result.avg_composition_cost, 4),
                   std::to_string(r.result.failures_admission)});
  }
  bench::emit(table, opt);

  // Expected ordering: smart selection carries most of the gain (variants
  // with it beat variants without it by a wide margin), and QCS keeps the
  // aggregated resource cost visibly lower than random composition. Whether
  // `full` or `select-only` lands on top is load-dependent: QCS concentrates
  // demand on the cheapest instance chain (one provider pool), while random
  // composition spreads it across every instance's pool — an interaction the
  // paper does not ablate; see EXPERIMENTS.md.
  const bool selection_dominates =
      results[0].result.success_ratio() >
          results[1].result.success_ratio() + 0.02 &&
      results[2].result.success_ratio() >
          results[3].result.success_ratio() + 0.02;
  const bool qcs_cheaper = results[0].result.avg_composition_cost <
                           results[2].result.avg_composition_cost;
  std::printf("shape: smart selection dominates either composition mode: %s\n",
              selection_dominates ? "yes" : "NO");
  std::printf("shape: QCS paths cheaper than random consistent paths: %s\n",
              qcs_cheaper ? "yes" : "NO");
  return 0;
}
