// Ablation: value of the uptime filter under churn. The paper credits QSA's
// churn tolerance to matching candidate uptime against the application's
// session duration; disabling only that filter isolates its contribution.
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  base.requests.rate_per_min = flags.get_double("rate", 100) * opt.scale;
  base.algorithm = harness::AlgorithmKind::kQsa;

  const std::vector<double> churn_rates =
      util::parse_double_list(flags.get("churn", "0,50,100,200"));
  util::reject_unknown_flags(flags, "ablation_uptime");

  bench::print_header("Ablation: uptime filter under churn",
                      "QSA with vs without the uptime>=duration match", opt,
                      base);

  std::vector<harness::ExperimentCell> cells;
  for (double churn : churn_rates) {
    for (bool uptime : {true, false}) {
      auto cfg = base;
      cfg.churn.events_per_min = churn * opt.scale;
      cfg.qsa_options.selector.use_uptime_filter = uptime;
      cells.push_back(harness::ExperimentCell{
          (uptime ? "with@" : "without@") + metrics::Table::num(churn, 0),
          cfg});
    }
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("ablation_uptime", results, opt);

  metrics::Table table({"churn_peers_per_min", "psi_with_uptime",
                        "psi_without_uptime", "departures_with",
                        "departures_without"});
  for (std::size_t i = 0; i < churn_rates.size(); ++i) {
    const auto& with = results[i * 2].result;
    const auto& without = results[i * 2 + 1].result;
    table.add_row({metrics::Table::num(churn_rates[i], 0),
                   metrics::Table::num(100 * with.success_ratio(), 1),
                   metrics::Table::num(100 * without.success_ratio(), 1),
                   std::to_string(with.failures_departure),
                   std::to_string(without.failures_departure)});
  }
  bench::emit(table, opt);

  // Under the heaviest churn, the filter should not hurt and usually helps.
  const auto& heavy_with = results[(churn_rates.size() - 1) * 2].result;
  const auto& heavy_without = results[(churn_rates.size() - 1) * 2 + 1].result;
  std::printf("shape: at max churn, departure-aborts with filter (%llu) <= "
              "without (%llu): %s\n",
              static_cast<unsigned long long>(heavy_with.failures_departure),
              static_cast<unsigned long long>(heavy_without.failures_departure),
              heavy_with.failures_departure <= heavy_without.failures_departure
                  ? "yes"
                  : "NO");
  return 0;
}
