// Ablation: the configurable importance weights (Definition 3.1 and the Phi
// metric, eq. 4-5). The paper distributes weights uniformly and notes they
// "can be adaptively configured according to the application's semantics";
// this bench sweeps the bandwidth weight omega_{m+1} from resource-only to
// bandwidth-only and reports how success ratio and failure mix respond.
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  base.requests.rate_per_min = flags.get_double("rate", 600) * opt.scale;
  base.churn.events_per_min = 0;
  base.algorithm = harness::AlgorithmKind::kQsa;

  const std::vector<double> bw_weights =
      util::parse_double_list(flags.get("weights", "0,0.1,0.333,0.6,0.9"));
  util::reject_unknown_flags(flags, "ablation_weights");

  bench::print_header(
      "Ablation: importance weight on bandwidth (omega_{m+1})",
      "paper uses uniform weights (= 1/3 with cpu+mem); saturated grid",
      opt, base);

  std::vector<harness::ExperimentCell> cells;
  for (double w : bw_weights) {
    auto cfg = base;
    cfg.bandwidth_weight = w;
    cells.push_back(
        harness::ExperimentCell{"w=" + metrics::Table::num(w, 3), cfg});
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("ablation_weights", results, opt);

  metrics::Table table({"bandwidth_weight", "psi_pct", "admission_failures",
                        "avg_composition_cost"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i].result;
    table.add_row({metrics::Table::num(bw_weights[i], 3),
                   metrics::Table::num(100 * r.success_ratio(), 1),
                   std::to_string(r.failures_admission),
                   metrics::Table::num(r.avg_composition_cost, 4)});
  }
  bench::emit(table, opt);

  // The knob must matter: psi is not flat across the sweep.
  double lo = 1, hi = 0;
  for (const auto& r : results) {
    lo = std::min(lo, r.result.success_ratio());
    hi = std::max(hi, r.result.success_ratio());
  }
  std::printf("shape: weight configuration moves psi by %.1f%%\n",
              100 * (hi - lo));
  return 0;
}
