// Ablation: probing period (information staleness). Dynamic peer selection
// acts on performance information as of the last probe epoch; the longer
// the period, the more concurrent requests pile onto the same
// attractive-looking peer before anyone notices it filled up, and the
// longer departed peers keep being selected. The paper's design leans on
// "up-to-date performance information ... through a controlled,
// benefit-based probing method" — this bench quantifies "up-to-date".
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  base.requests.rate_per_min = flags.get_double("rate", 800) * opt.scale;
  base.churn.events_per_min = flags.get_double("churn", 50) * opt.scale;
  base.algorithm = harness::AlgorithmKind::kQsa;

  const std::vector<double> periods_s =
      util::parse_double_list(flags.get("periods", "5,30,120,600"));
  util::reject_unknown_flags(flags, "ablation_staleness");

  bench::print_header(
      "Ablation: probe period (performance-information staleness)",
      "heavy load + churn; selection quality vs probing freshness", opt,
      base);

  std::vector<harness::ExperimentCell> cells;
  for (double s : periods_s) {
    auto cfg = base;
    cfg.probe_period = sim::SimTime::seconds(s);
    cells.push_back(harness::ExperimentCell{
        metrics::Table::num(s, 0) + "s", cfg});
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("ablation_staleness", results, opt);

  metrics::Table table({"probe_period_s", "psi_pct", "admission_failures",
                        "departure_failures"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i].result;
    table.add_row({metrics::Table::num(periods_s[i], 0),
                   metrics::Table::num(100 * r.success_ratio(), 1),
                   std::to_string(r.failures_admission),
                   std::to_string(r.failures_departure)});
  }
  bench::emit(table, opt);

  std::printf(
      "shape: staler probes mean more admission collisions (first %llu vs "
      "last %llu): %s\n",
      static_cast<unsigned long long>(results.front().result.failures_admission),
      static_cast<unsigned long long>(results.back().result.failures_admission),
      results.back().result.failures_admission >=
              results.front().result.failures_admission
          ? "yes"
          : "NO");
  return 0;
}
