// Substrate study: the paper's discovery step works over "Chord or CAN".
// This bench runs the same workload on both lookup substrates and compares
// end-to-end success ratio (which should be substrate-insensitive) and the
// discovery cost (hops per request), where the substrates differ by design:
// Chord routes in O(log N), 2-d CAN in O(sqrt N).
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  base.requests.rate_per_min = flags.get_double("rate", 200) * opt.scale;
  base.churn.events_per_min = flags.get_double("churn", 0) * opt.scale;
  util::reject_unknown_flags(flags, "ablation_overlay");
  base.algorithm = harness::AlgorithmKind::kQsa;

  bench::print_header("Substrate: Chord vs CAN lookup",
                      "Section 3.2 invokes 'Chord or CAN' for discovery",
                      opt, base);

  std::vector<harness::ExperimentCell> cells;
  for (harness::OverlayKind kind :
       {harness::OverlayKind::kChord, harness::OverlayKind::kCan,
        harness::OverlayKind::kPastry}) {
    auto cfg = base;
    cfg.overlay = kind;
    cells.push_back(
        harness::ExperimentCell{std::string(to_string(kind)), cfg});
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("ablation_overlay", results, opt);

  metrics::Table table(
      {"overlay", "psi_pct", "lookup_hops_per_request", "setup_ms_per_req"});
  for (const auto& r : results) {
    const double reqs =
        static_cast<double>(std::max<std::uint64_t>(1, r.result.requests));
    table.add_row(
        {r.label, metrics::Table::num(100 * r.result.success_ratio(), 1),
         metrics::Table::num(static_cast<double>(r.result.lookup_hops) / reqs, 2),
         metrics::Table::num(
             static_cast<double>(r.result.setup_latency_ms) / reqs, 1)});
  }
  bench::emit(table, opt);

  double psi_lo = 1, psi_hi = 0;
  for (const auto& r : results) {
    psi_lo = std::min(psi_lo, r.result.success_ratio());
    psi_hi = std::max(psi_hi, r.result.success_ratio());
  }
  std::printf("shape: psi substrate-insensitive (spread %.1f%%): %s\n",
              100 * (psi_hi - psi_lo), psi_hi - psi_lo < 0.05 ? "yes" : "NO");
  std::printf(
      "shape: hop cost ordering pastry (log16) < chord (log2) < can (sqrt): "
      "%s\n",
      results[2].result.lookup_hops < results[0].result.lookup_hops &&
              results[0].result.lookup_hops < results[1].result.lookup_hops
          ? "yes"
          : "NO");
  return 0;
}
