// Figure 6: success ratio fluctuation within a 100-minute run at request
// rate = 200 req/min, sampled every 2 minutes, no topological variation.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto cfg = bench::paper_config(opt);
  cfg.horizon = sim::SimTime::minutes(flags.get_double("minutes", 100));
  cfg.sample_period = sim::SimTime::minutes(2);
  cfg.churn.events_per_min = 0;
  cfg.requests.rate_per_min = flags.get_double("rate", 200) * opt.scale;
  util::reject_unknown_flags(flags, "fig6_success_timeseries");

  bench::print_header(
      "Figure 6: success ratio fluctuation (no churn)",
      "10^4 peers, 100 min, rate = 200 req/min, 2-min samples", opt, cfg);

  auto cells = harness::algorithm_comparison(cfg);
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("fig6_success_timeseries", results, opt);

  metrics::Table table({"minute", "psi_qsa", "psi_random", "psi_fixed"});
  const auto& qsa_s = results[0].result.series.samples();
  const auto& rnd_s = results[1].result.series.samples();
  const auto& fix_s = results[2].result.series.samples();
  const std::size_t n =
      std::min({qsa_s.size(), rnd_s.size(), fix_s.size()});
  for (std::size_t i = 0; i < n; ++i) {
    table.add_row({metrics::Table::num(qsa_s[i].time.as_minutes(), 0),
                   metrics::Table::num(qsa_s[i].value, 3),
                   metrics::Table::num(rnd_s[i].value, 3),
                   metrics::Table::num(fix_s[i].value, 3)});
  }
  bench::emit(table, opt);

  int qsa_wins = 0;
  double max_gap_random = 0, max_gap_fixed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    qsa_wins += qsa_s[i].value + 1e-9 >= rnd_s[i].value;
    max_gap_random = std::max(max_gap_random, qsa_s[i].value - rnd_s[i].value);
    max_gap_fixed = std::max(max_gap_fixed, qsa_s[i].value - fix_s[i].value);
  }
  std::printf("shape: QSA >= random in %d/%zu windows\n", qsa_wins, n);
  std::printf("shape: max gap QSA-random = %.0f%% (paper: up to ~15%%), "
              "QSA-fixed = %.0f%% (paper: up to ~90%%)\n",
              100 * max_gap_random, 100 * max_gap_fixed);
  return 0;
}
