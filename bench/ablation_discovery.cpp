// Discovery-backend ablation (DESIGN.md §15): the flat directory lookup vs
// the attribute index (--discovery=dht) across peer counts and churn rates.
// The directory routes one overlay lookup per abstract service and filters
// nothing; the index routes per-attribute bucket scans with the uptime and
// sink-level predicates pushed down, then pays a client-side re-check.
//
// Reported per cell: psi, discovery hops per request, and — for the index —
// hops per range scan, the quantization false-positive rate, the
// staleness-at-use rate (candidates whose provider had already departed)
// and scans lost under faults (zero here: this sweep runs fault-free).
// tools/check_discovery.py gates CI on the --json-out report: scan cost
// must stay O(log N + span) as the population grows, and psi must track
// the directory baseline.
//
// Flags: --ns=N1,N2,...    populations (default 600,1200,2400)
//        --churns=C1,...   churn events/min per 10^4 peers (default 0,20)
//        --minutes=M       horizon per cell (default 20)
//        --rate=R          requests/min per 10^4 peers (default 150)
//        plus the shared bench flags (--seed, --threads, --csv,
//        --metrics-out) and --json-out=FILE for the gate report.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace {

std::vector<std::size_t> parse_size_list(const std::string& list) {
  std::vector<std::size_t> out;
  for (const double v : qsa::util::parse_double_list(list)) {
    out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);
  const auto ns = parse_size_list(flags.get("ns", "600,1200,2400"));
  const auto churns = util::parse_double_list(flags.get("churns", "0,20"));
  const double minutes = flags.get_double("minutes", 20);
  const double rate = flags.get_double("rate", 150);
  const std::string json_out = flags.get("json-out", "");
  util::reject_unknown_flags(flags, "ablation_discovery");
  if (ns.empty() || churns.empty()) {
    std::fprintf(stderr, "--ns and --churns must each name a value\n");
    return 2;
  }

  harness::GridConfig base;
  base.seed = opt.seed;
  base.horizon = sim::SimTime::minutes(minutes);
  bench::BenchOptions header_opt = opt;
  {
    auto shown = base;
    shown.peers = ns.front();
    bench::print_header(
        "Discovery: directory lookup vs attribute-indexed range scans",
        "population x churn sweep, both backends; psi + routing cost",
        header_opt, shown);
  }

  const harness::DiscoveryKind backends[] = {
      harness::DiscoveryKind::kDirectory, harness::DiscoveryKind::kDht};
  std::vector<harness::ExperimentCell> cells;
  for (const std::size_t n : ns) {
    for (const double churn : churns) {
      for (const auto backend : backends) {
        auto cfg = base;
        const double factor = static_cast<double>(n) / 1e4;
        cfg.peers = n;
        cfg.requests.rate_per_min = rate * factor;
        cfg.churn.events_per_min = churn * factor;
        cfg.discovery = backend;
        cells.push_back(harness::ExperimentCell{
            std::string(harness::to_string(backend)) +
                " N=" + std::to_string(n) +
                " churn=" + metrics::Table::num(churn, 0),
            cfg});
      }
    }
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("ablation_discovery", results, opt);

  const auto cell_at = [&](std::size_t n_i, std::size_t c_i, bool dht) {
    return n_i * churns.size() * 2 + c_i * 2 + (dht ? 1 : 0);
  };
  const auto ratio = [](std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  };

  metrics::Table table({"backend", "peers", "churn", "psi_pct",
                        "hops_per_req", "hops_per_scan", "fp_rate",
                        "stale_rate", "failed_scans"});
  for (std::size_t n_i = 0; n_i < ns.size(); ++n_i) {
    for (std::size_t c_i = 0; c_i < churns.size(); ++c_i) {
      for (int dht = 0; dht < 2; ++dht) {
        const auto& r = results[cell_at(n_i, c_i, dht != 0)].result;
        const auto scans = r.counters.get("index.scans");
        table.add_row(
            {dht != 0 ? "dht" : "directory", std::to_string(ns[n_i]),
             metrics::Table::num(churns[c_i], 0),
             metrics::Table::num(100 * r.success_ratio(), 1),
             metrics::Table::num(ratio(r.lookup_hops, r.requests), 2),
             dht != 0 ? metrics::Table::num(
                            ratio(r.counters.get("index.scan_hops"), scans), 2)
                      : "-",
             dht != 0 ? metrics::Table::num(
                            ratio(r.counters.get("index.false_positives"),
                                  r.counters.get("index.scanned_postings")),
                            3)
                      : "-",
             dht != 0 ? metrics::Table::num(
                            ratio(r.counters.get("index.stale_postings"),
                                  r.counters.get("index.scanned_postings")),
                            4)
                      : "-",
             dht != 0 ? std::to_string(r.counters.get("index.failed_scans"))
                      : "-"});
      }
    }
  }
  bench::emit(table, opt);

  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::fprintf(stderr, "cannot open --json-out file %s\n",
                   json_out.c_str());
      return 1;
    }
    os << "{\"bench\":\"ablation_discovery\",\"minutes\":" << minutes
       << ",\"seed\":" << opt.seed << ",\"cells\":[";
    bool first = true;
    for (std::size_t n_i = 0; n_i < ns.size(); ++n_i) {
      for (std::size_t c_i = 0; c_i < churns.size(); ++c_i) {
        for (int dht = 0; dht < 2; ++dht) {
          const auto& r = results[cell_at(n_i, c_i, dht != 0)].result;
          if (!first) os << ',';
          first = false;
          os << "{\"backend\":\"" << (dht != 0 ? "dht" : "directory")
             << "\",\"peers\":" << ns[n_i] << ",\"churn\":" << churns[c_i]
             << ",\"psi\":" << r.success_ratio()
             << ",\"requests\":" << r.requests
             << ",\"lookup_hops\":" << r.lookup_hops;
          if (dht != 0) {
            os << ",\"scans\":" << r.counters.get("index.scans")
               << ",\"scan_hops\":" << r.counters.get("index.scan_hops")
               << ",\"scan_segments\":"
               << r.counters.get("index.scan_segments")
               << ",\"scanned_postings\":"
               << r.counters.get("index.scanned_postings")
               << ",\"false_positives\":"
               << r.counters.get("index.false_positives")
               << ",\"stale_postings\":"
               << r.counters.get("index.stale_postings")
               << ",\"failed_scans\":" << r.counters.get("index.failed_scans")
               << ",\"postings\":" << r.counters.get("index.postings");
          }
          os << '}';
        }
      }
    }
    os << "]}\n";
    std::printf("json report -> %s\n", json_out.c_str());
  }

  // Acceptance shape, mirrored (with knobs) by tools/check_discovery.py:
  // every dht cell completed its scans fault-free, scan cost stays
  // O(log N + span) rather than per-bucket O(log N), and psi tracks the
  // directory baseline everywhere on the sweep.
  bool completed_ok = true;
  bool hops_ok = true;
  bool psi_ok = true;
  for (std::size_t n_i = 0; n_i < ns.size(); ++n_i) {
    for (std::size_t c_i = 0; c_i < churns.size(); ++c_i) {
      const auto& dir = results[cell_at(n_i, c_i, false)].result;
      const auto& dht = results[cell_at(n_i, c_i, true)].result;
      const auto scans = dht.counters.get("index.scans");
      if (dht.requests == 0 || scans == 0 ||
          dht.counters.get("index.failed_scans") != 0) {
        completed_ok = false;
      }
      const double hops_per_scan =
          ratio(dht.counters.get("index.scan_hops"), scans);
      const double bound =
          4.0 * std::log2(static_cast<double>(ns[n_i])) + 140.0;
      if (hops_per_scan > bound) hops_ok = false;
      if (dht.success_ratio() < dir.success_ratio() - 0.2) psi_ok = false;
    }
  }
  std::printf("shape: every dht cell completes its scans fault-free:  %s\n",
              completed_ok ? "yes" : "NO");
  std::printf("shape: scan cost bounded by O(log N + span):           %s\n",
              hops_ok ? "yes" : "NO");
  std::printf("shape: psi(dht) within 0.2 of psi(directory) per cell: %s\n",
              psi_ok ? "yes" : "NO");
  return completed_ok && hops_ok && psi_ok ? 0 : 1;
}
