// Figure 7: average success ratio vs topological variation rate
// (peers/min), 60-minute runs at request rate = 100 req/min.
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  base.requests.rate_per_min = flags.get_double("rate", 100) * opt.scale;

  // The paper sweeps 0..200 peers/min (pre-scaling; <= 2% of the population).
  std::vector<double> churn_rates =
      util::parse_double_list(flags.get("churn", "0,25,50,100,150,200"));
  util::reject_unknown_flags(flags, "fig7_success_vs_churn");

  bench::print_header(
      "Figure 7: average success ratio vs topological variation rate",
      "10^4 peers, 60 min, rate = 100 req/min, churn 0..200 peers/min", opt,
      base);

  std::vector<harness::ExperimentCell> cells;
  for (double churn : churn_rates) {
    auto cfg = base;
    cfg.churn.events_per_min = churn * opt.scale;
    for (auto& cell : harness::algorithm_comparison(cfg)) {
      cells.push_back(std::move(cell));
    }
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("fig7_success_vs_churn", results, opt);

  metrics::Table table({"churn_peers_per_min", "psi_qsa", "psi_random",
                        "psi_fixed"});
  for (std::size_t i = 0; i < churn_rates.size(); ++i) {
    table.add_row(
        {metrics::Table::num(churn_rates[i], 0),
         metrics::Table::num(100 * results[i * 3].result.success_ratio(), 1),
         metrics::Table::num(100 * results[i * 3 + 1].result.success_ratio(), 1),
         metrics::Table::num(100 * results[i * 3 + 2].result.success_ratio(), 1)});
  }
  bench::emit(table, opt);

  // Shape: QSA tolerates churn best; success degrades as churn grows.
  bool qsa_best = true;
  for (std::size_t i = 0; i < churn_rates.size(); ++i) {
    qsa_best &= results[i * 3].result.success_ratio() + 1e-9 >=
                results[i * 3 + 1].result.success_ratio();
  }
  const double qsa_first = results[0].result.success_ratio();
  const double qsa_last =
      results[(churn_rates.size() - 1) * 3].result.success_ratio();
  std::printf("shape: psi(QSA) >= psi(random) at every churn rate: %s\n",
              qsa_best ? "yes" : "NO");
  std::printf("shape: churn sensitivity visible (psi drops %0.1f%% -> %0.1f%%): %s\n",
              100 * qsa_first, 100 * qsa_last,
              qsa_last < qsa_first ? "yes" : "NO");
  return 0;
}
