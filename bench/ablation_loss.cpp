// Robustness study: message loss. The fault plan drops probes, soft-state
// notifications, lookup hops and recovery round-trips at a configurable
// rate; retry + backoff and alternate-route lookups absorb some of it, the
// rest surfaces as discovery/selection/admission failures and stale probe
// data. Sweeps the loss rate for each algorithm and reconciles the observed
// drop fraction against the configured one (deterministic hash-derived
// verdicts make this exact under a fixed seed).
#include <cmath>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  base.requests.rate_per_min = flags.get_double("rate", 200) * opt.scale;
  base.churn.events_per_min = flags.get_double("churn", 0) * opt.scale;
  base.enable_recovery = flags.get_bool("recovery", false);
  base.faults.max_retries =
      static_cast<int>(flags.get_int("fault-retries", 2));

  const std::vector<double> losses =
      util::parse_double_list(flags.get("loss", "0,0.01,0.05,0.1,0.2,0.4"));
  util::reject_unknown_flags(flags, "ablation_loss");
  const harness::AlgorithmKind algos[] = {harness::AlgorithmKind::kQsa,
                                          harness::AlgorithmKind::kRandom,
                                          harness::AlgorithmKind::kFixed};

  bench::print_header(
      "Robustness: message loss vs request success",
      "loss sweep over all channels; retries + alternate-route lookups",
      opt, base);

  std::vector<harness::ExperimentCell> cells;
  for (const auto algo : algos) {
    for (double p : losses) {
      auto cfg = base;
      cfg.algorithm = algo;
      cfg.faults.set_all_loss(p);
      cells.push_back(harness::ExperimentCell{
          std::string(harness::to_string(algo)) +
              " loss=" + metrics::Table::num(p, 2),
          cfg});
    }
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("ablation_loss", results, opt);

  metrics::Table table({"algorithm", "loss", "psi_pct", "fail_discovery",
                        "dropped", "drop_rate", "retries", "rerouted"});
  bool monotone = true;
  bool rates_ok = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i].result;
    const double p = losses[i % losses.size()];
    const auto messages = r.counters.get("fault.messages");
    const auto dropped = r.counters.get("fault.dropped");
    const double observed =
        messages == 0 ? 0
                      : static_cast<double>(dropped) /
                            static_cast<double>(messages);
    const auto retries = r.counters.get("probe.retries") +
                         r.counters.get("lookup.retries") +
                         r.counters.get("session.recovery_retries");
    table.add_row({std::string(harness::to_string(
                       cells[i].config.algorithm)),
                   metrics::Table::num(p, 2),
                   metrics::Table::num(100 * r.success_ratio(), 1),
                   std::to_string(r.failures_discovery),
                   std::to_string(dropped), metrics::Table::num(observed, 3),
                   std::to_string(retries),
                   std::to_string(r.counters.get("lookup.rerouted"))});
    // Within one algorithm psi must not improve as loss grows (small
    // tolerance: psi is a ratio of integer counts).
    if (i % losses.size() != 0 &&
        r.success_ratio() >
            results[i - 1].result.success_ratio() + 0.02) {
      monotone = false;
    }
    // The empirical drop fraction must track the configured rate.
    if (messages > 1000 && std::abs(observed - p) > 0.05) rates_ok = false;
  }
  bench::emit(table, opt);

  std::printf("shape: psi degrades monotonically with loss:   %s\n",
              monotone ? "yes" : "NO");
  std::printf("shape: observed drop rate matches configured:  %s\n",
              rates_ok ? "yes" : "NO");
  return 0;
}
