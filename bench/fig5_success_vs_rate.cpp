// Figure 5: average service aggregation request success ratio (psi) vs
// request rate, over 400 simulated minutes, no topological variation,
// QSA vs random vs fixed.
//
// Paper setup: 10^4 peers; request rates 0..1000 req/min; each point is the
// average success ratio over a 400-minute run.
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 400));
  base.churn.events_per_min = 0;

  // The paper sweeps 0..1000 req/min (pre-scaling).
  std::vector<double> rates = util::parse_double_list(
      flags.get("rates", "50,100,200,400,600,800,1000"));
  util::reject_unknown_flags(flags, "fig5_success_vs_rate");

  bench::print_header(
      "Figure 5: average success ratio vs request rate",
      "10^4 peers, 400 min, no churn, rates 0..1000 req/min", opt, base);

  std::vector<harness::ExperimentCell> cells;
  for (double rate : rates) {
    auto cfg = base;
    cfg.requests.rate_per_min = rate * opt.scale;
    for (auto& cell : harness::algorithm_comparison(cfg)) {
      cell.label = cell.label + "@" + metrics::Table::num(rate, 0);
      cells.push_back(std::move(cell));
    }
  }

  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("fig5_success_vs_rate", results, opt);

  metrics::Table table({"rate_req_per_min", "psi_qsa", "psi_random",
                        "psi_fixed"});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& qsa_r = results[i * 3 + 0].result;
    const auto& rnd_r = results[i * 3 + 1].result;
    const auto& fix_r = results[i * 3 + 2].result;
    table.add_row({metrics::Table::num(rates[i], 0),
                   metrics::Table::num(100 * qsa_r.success_ratio(), 1),
                   metrics::Table::num(100 * rnd_r.success_ratio(), 1),
                   metrics::Table::num(100 * fix_r.success_ratio(), 1)});
  }
  bench::emit(table, opt);

  // Shape checks the paper's Figure 5 exhibits.
  bool qsa_beats_random = true, random_beats_fixed = true;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    qsa_beats_random &= results[i * 3].result.success_ratio() + 1e-9 >=
                        results[i * 3 + 1].result.success_ratio();
    random_beats_fixed &= results[i * 3 + 1].result.success_ratio() + 1e-9 >=
                          results[i * 3 + 2].result.success_ratio();
  }
  std::printf("shape: psi(QSA) >= psi(random) at every rate: %s\n",
              qsa_beats_random ? "yes" : "NO");
  std::printf("shape: psi(random) >= psi(fixed) at every rate: %s\n",
              random_beats_fixed ? "yes" : "NO");
  return 0;
}
