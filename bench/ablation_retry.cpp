// Extension study: admission retries. Selection acts on probe-epoch-stale
// information, so under load several requests can pile onto the same
// attractive peer within one epoch and fail admission. A retry that
// excludes the blamed peer recovers most of these stale-info collisions at
// the cost of extra setup work.
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  base.requests.rate_per_min = flags.get_double("rate", 1000) * opt.scale;
  base.churn.events_per_min = 0;
  base.algorithm = harness::AlgorithmKind::kQsa;

  const std::vector<double> retries =
      util::parse_double_list(flags.get("retries", "0,1,2,4"));
  util::reject_unknown_flags(flags, "ablation_retry");

  bench::print_header(
      "Extension: admission retries (second-chance selection)",
      "saturated grid; paper behaviour = 0 retries", opt, base);

  std::vector<harness::ExperimentCell> cells;
  for (double r : retries) {
    auto cfg = base;
    cfg.admission_retries = static_cast<int>(r);
    cells.push_back(
        harness::ExperimentCell{"retries=" + metrics::Table::num(r, 0), cfg});
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("ablation_retry", results, opt);

  metrics::Table table({"retries", "psi_pct", "admission_failures",
                        "retry_attempts"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i].result;
    table.add_row({metrics::Table::num(retries[i], 0),
                   metrics::Table::num(100 * r.success_ratio(), 1),
                   std::to_string(r.failures_admission),
                   std::to_string(r.counters.get("admission.retries"))});
  }
  bench::emit(table, opt);

  std::printf("shape: retries reduce admission failures monotonically: %s\n",
              results.front().result.failures_admission >=
                      results.back().result.failures_admission
                  ? "yes"
                  : "NO");
  return 0;
}
