// Replication study (DESIGN.md §10): QCS concentrates every request for an
// application onto the single cheapest instance chain, so one 40-80
// provider pool saturates while equivalent capacity idles (§4). Sweeps the
// request rate with the demand-driven replication tier off and on for every
// algorithm and reports psi plus the concentration metric (the mean
// co-location share at admission: what fraction of a service's active
// sessions sit on the chosen host). The headline claim:
// at high load, replication recovers the concentration-induced psi loss
// with a strictly lower peak — without touching QCS's cheaper-path
// objective (composition never sees the clones; the composed cost stays
// bit-identical).
#include <string>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  base.churn.events_per_min = flags.get_double("churn", 0) * opt.scale;
  // Concentration is measured for every cell, replicated or not.
  base.track_load = true;
  base.replication.threshold = flags.get_double(
      "replica-threshold", base.replication.threshold);
  base.replication.cooldown = sim::SimTime::seconds(flags.get_double(
      "replica-cooldown", base.replication.cooldown.as_seconds()));
  base.replication.max_replicas = static_cast<int>(
      flags.get_int("max-replicas", base.replication.max_replicas));

  // The sweep's top two rates sit past the saturation knee so the
  // concentration pathology (and its repair) is actually on display.
  const std::vector<double> rates =
      util::parse_double_list(flags.get("rates", "400,800,1600,3200"));
  util::reject_unknown_flags(flags, "ablation_replication");
  const harness::AlgorithmKind algos[] = {harness::AlgorithmKind::kQsa,
                                          harness::AlgorithmKind::kRandom,
                                          harness::AlgorithmKind::kFixed};

  bench::print_header(
      "Replication: demand-driven clones vs the QCS concentration hotspot",
      "rate sweep, replication off/on per algorithm; psi + peak provider load",
      opt, base);

  std::vector<harness::ExperimentCell> cells;
  for (const auto algo : algos) {
    for (double rate : rates) {
      for (int on = 0; on < 2; ++on) {
        auto cfg = base;
        cfg.algorithm = algo;
        cfg.requests.rate_per_min = rate * opt.scale;
        cfg.replication.enabled = on != 0;
        cells.push_back(harness::ExperimentCell{
            std::string(harness::to_string(algo)) +
                " rate=" + metrics::Table::num(rate, 0) +
                (on != 0 ? " +replication" : ""),
            cfg});
      }
    }
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("ablation_replication", results, opt);

  const std::size_t nrates = rates.size();
  const auto cell_at = [&](std::size_t algo_i, std::size_t rate_i, bool on) {
    return algo_i * nrates * 2 + rate_i * 2 + (on ? 1 : 0);
  };

  metrics::Table table({"algorithm", "rate", "replication", "psi_pct",
                        "fail_selection", "fail_admission", "peak_load",
                        "concentration", "replicas", "retired", "no_host"});
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t ri = 0; ri < nrates; ++ri) {
      for (int on = 0; on < 2; ++on) {
        const std::size_t i = cell_at(a, ri, on != 0);
        const auto& r = results[i].result;
        table.add_row(
            {std::string(harness::to_string(algos[a])),
             metrics::Table::num(rates[ri], 0), on != 0 ? "on" : "off",
             metrics::Table::num(100 * r.success_ratio(), 1),
             std::to_string(r.failures_selection),
             std::to_string(r.failures_admission),
             std::to_string(r.counters.get("load.provider_peak")),
             metrics::Table::num(r.avg_service_concentration, 4),
             std::to_string(r.counters.get("replica.created")),
             std::to_string(r.counters.get("replica.retired")),
             std::to_string(r.counters.get("replica.rejected_no_host"))});
      }
    }
  }
  bench::emit(table, opt);

  // Acceptance shape: at the two highest rates, QSA+replication must match
  // or beat plain QSA on psi while spreading the load (strictly lower peak),
  // and must leave the composed cost untouched (clones never enter QCS).
  bool psi_ok = true;
  bool spread_ok = true;
  bool cost_ok = true;
  for (std::size_t ri = nrates >= 2 ? nrates - 2 : 0; ri < nrates; ++ri) {
    const auto& off = results[cell_at(0, ri, false)].result;
    const auto& on = results[cell_at(0, ri, true)].result;
    if (on.success_ratio() < off.success_ratio()) psi_ok = false;
    // The mean co-location share at admission, not the run-wide peak: the
    // peak is volume-unfair (replication admits *more* sessions, so its
    // absolute worst moment can be higher even while typical placements
    // spread across the widened pool); the share is scale-free in both
    // volume and rate.
    if (on.avg_service_concentration >= off.avg_service_concentration) {
      spread_ok = false;
    }
  }
  for (std::size_t ri = 0; ri < nrates; ++ri) {
    const auto& off = results[cell_at(0, ri, false)].result;
    const auto& on = results[cell_at(0, ri, true)].result;
    if (off.avg_composition_cost != on.avg_composition_cost) cost_ok = false;
  }
  std::printf(
      "shape: psi(QSA+replication) >= psi(QSA) at top two rates: %s\n",
      psi_ok ? "yes" : "NO");
  std::printf(
      "shape: replication strictly lowers service concentration: %s\n",
      spread_ok ? "yes" : "NO");
  std::printf(
      "shape: composed cost bit-identical (QCS objective kept):  %s\n",
      cost_ok ? "yes" : "NO");
  return psi_ok && spread_ok && cost_ok ? 0 : 1;
}
