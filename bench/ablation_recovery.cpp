// Extension study: runtime failure recovery. The paper stops at setup time
// and notes that "we do need runtime failure detection and recovery" under
// churn (Section 4.2) — this bench implements that future-work extension
// (re-select a replacement host when a provisioning peer departs, migrate
// the reservations) and measures how much of the churn-induced loss it
// recovers.
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  base.requests.rate_per_min = flags.get_double("rate", 100) * opt.scale;
  base.algorithm = harness::AlgorithmKind::kQsa;

  const std::vector<double> churn_rates =
      util::parse_double_list(flags.get("churn", "50,100,200"));
  util::reject_unknown_flags(flags, "ablation_recovery");

  bench::print_header("Extension: mid-session departure recovery",
                      "the paper's future-work item, quantified under churn",
                      opt, base);

  std::vector<harness::ExperimentCell> cells;
  for (double churn : churn_rates) {
    for (bool recovery : {false, true}) {
      auto cfg = base;
      cfg.churn.events_per_min = churn * opt.scale;
      cfg.enable_recovery = recovery;
      cells.push_back(harness::ExperimentCell{
          (recovery ? "recovery@" : "abort@") + metrics::Table::num(churn, 0),
          cfg});
    }
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("ablation_recovery", results, opt);

  metrics::Table table({"churn_peers_per_min", "psi_abort", "psi_recovery",
                        "sessions_recovered", "aborts_with_recovery"});
  for (std::size_t i = 0; i < churn_rates.size(); ++i) {
    const auto& off = results[i * 2].result;
    const auto& on = results[i * 2 + 1].result;
    table.add_row({metrics::Table::num(churn_rates[i], 0),
                   metrics::Table::num(100 * off.success_ratio(), 1),
                   metrics::Table::num(100 * on.success_ratio(), 1),
                   std::to_string(on.counters.get("sessions.recovered")),
                   std::to_string(on.counters.get("sessions.aborted"))});
  }
  bench::emit(table, opt);

  bool helps = true;
  for (std::size_t i = 0; i < churn_rates.size(); ++i) {
    helps &= results[i * 2 + 1].result.success_ratio() + 1e-9 >=
             results[i * 2].result.success_ratio();
  }
  std::printf("shape: recovery never hurts and lifts psi under churn: %s\n",
              helps ? "yes" : "NO");
  return 0;
}
