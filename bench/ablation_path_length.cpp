// Ablation: service path length (the paper's n-hop aggregation, Figure 1b).
// Longer abstract paths multiply everything — composition layers, peers to
// select, reservations to hold, exposure to departures — so psi falls with
// hop count. The paper mixes lengths 2-5; this bench isolates each.
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);
  const auto opt = bench::parse_options(flags);

  auto base = bench::paper_config(opt);
  base.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  base.requests.rate_per_min = flags.get_double("rate", 400) * opt.scale;
  base.churn.events_per_min = flags.get_double("churn", 50) * opt.scale;
  util::reject_unknown_flags(flags, "ablation_path_length");
  base.algorithm = harness::AlgorithmKind::kQsa;

  bench::print_header(
      "Ablation: abstract service path length (n-hop aggregation)",
      "paper mixes lengths 2-5; moderate churn (50 peers/min pre-scale)",
      opt, base);

  std::vector<harness::ExperimentCell> cells;
  for (int len = 1; len <= 5; ++len) {
    auto cfg = base;
    cfg.apps.min_path_len = len;
    cfg.apps.max_path_len = len;
    cells.push_back(
        harness::ExperimentCell{"len=" + std::to_string(len), cfg});
  }
  bench::enable_observability(cells, opt);
  const auto results = harness::ExperimentRunner(opt.threads).run(cells);
  bench::write_metrics_sidecar("ablation_path_length", results, opt);

  metrics::Table table({"path_length", "psi_pct", "composition_failures",
                        "departure_failures", "lookup_hops_per_req"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i].result;
    const double reqs =
        static_cast<double>(std::max<std::uint64_t>(1, r.requests));
    table.add_row(
        {std::to_string(i + 1),
         metrics::Table::num(100 * r.success_ratio(), 1),
         std::to_string(r.failures_composition),
         std::to_string(r.failures_departure),
         metrics::Table::num(static_cast<double>(r.lookup_hops) / reqs, 1)});
  }
  bench::emit(table, opt);

  std::printf("shape: psi decreases with path length: %s\n",
              results.front().result.success_ratio() >
                      results.back().result.success_ratio()
                  ? "yes"
                  : "NO");
  std::printf("shape: departure exposure grows with path length: %s\n",
              results.back().result.failures_departure >
                      results.front().result.failures_departure
                  ? "yes"
                  : "NO");
  return 0;
}
