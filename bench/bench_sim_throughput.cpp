// Event-engine throughput (google-benchmark): the slab/indexed-heap
// EventQueue against the pre-refactor binary-heap engine (a verbatim copy in
// legacy_event_queue.hpp), plus a whole-grid wall-clock row. CI pairs the
// BM_EventQueue*/BM_EventQueueLegacy* rows and gates the ratio with
// tools/check_sim_speedup.py (BENCH_sim.json artifact).
//
// Two steady-state shapes per engine:
//   * Hold/N        — schedule+pop with N events always pending (the
//                     simulator's timer/workload mix),
//   * CancelHeavy/N — every other event is cancelled before it fires (churn
//                     cancelling peer timers; the legacy engine pays the
//                     side-table + skim cost here).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "legacy_event_queue.hpp"
#include "qsa/harness/grid.hpp"
#include "qsa/sim/event_queue.hpp"
#include "qsa/sim/time.hpp"

namespace {

using namespace qsa;

// Deterministic pseudo-times: enough spread that heap paths are exercised,
// no RNG in the measured loop.
inline sim::SimTime jittered(std::uint64_t i) {
  return sim::SimTime::millis(
      static_cast<std::int64_t>((i * 2654435761ULL) % 100'000));
}

template <typename Queue>
void hold_steady(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Queue q;
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    q.schedule(jittered(i), [&sink] { ++sink; });
  }
  std::uint64_t i = n;
  for (auto _ : state) {
    auto fired = q.pop();
    fired.action();
    q.schedule(fired.time + jittered(i++), [&sink] { ++sink; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

template <typename Queue>
void cancel_heavy(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Queue q;
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    q.schedule(jittered(i), [&sink] { ++sink; });
  }
  std::uint64_t i = n;
  for (auto _ : state) {
    // Two schedules, one cancel, one fire per iteration: a 1:1
    // cancel-to-fire mix at exactly constant population.
    auto fired = q.pop();
    fired.action();
    q.schedule(fired.time + jittered(i++), [&sink] { ++sink; });
    auto doomed = q.schedule(fired.time + jittered(i++), [&sink] { ++sink; });
    q.cancel(doomed);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_EventQueueHold(benchmark::State& state) {
  hold_steady<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueHold)->Arg(256)->Arg(4096)->Arg(65536);

void BM_EventQueueLegacyHold(benchmark::State& state) {
  hold_steady<bench::legacy::EventQueue>(state);
}
BENCHMARK(BM_EventQueueLegacyHold)->Arg(256)->Arg(4096)->Arg(65536);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  cancel_heavy<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(256)->Arg(4096)->Arg(65536);

void BM_EventQueueLegacyCancelHeavy(benchmark::State& state) {
  cancel_heavy<bench::legacy::EventQueue>(state);
}
BENCHMARK(BM_EventQueueLegacyCancelHeavy)->Arg(256)->Arg(4096)->Arg(65536);

// Whole-grid wall-clock: the fig5-shaped workload at a laptop scale. Not
// paired against a legacy row (the library has one engine); the checker
// prints its events/sec as context and CI archives it in BENCH_sim.json.
void BM_GridWallclock(benchmark::State& state) {
  double events = 0;
  for (auto _ : state) {
    harness::GridConfig cfg;
    cfg.seed = 11;
    cfg.peers = 500;
    cfg.min_providers = 10;
    cfg.max_providers = 20;
    cfg.apps.applications = 5;
    cfg.requests.rate_per_min = static_cast<double>(state.range(0));
    cfg.churn.events_per_min = 6;
    cfg.horizon = sim::SimTime::minutes(10);
    harness::GridSimulation grid(cfg);
    const auto r = grid.run();
    benchmark::DoNotOptimize(r.requests);
    events += static_cast<double>(grid.simulator().executed_events());
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(events, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GridWallclock)->Arg(60)->Arg(240)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
