// Event-engine throughput (google-benchmark): the slab/indexed-heap
// EventQueue against the pre-refactor binary-heap engine (a verbatim copy in
// legacy_event_queue.hpp), plus a whole-grid wall-clock row. CI pairs the
// BM_EventQueue*/BM_EventQueueLegacy* rows and gates the ratio with
// tools/check_sim_speedup.py (BENCH_sim.json artifact).
//
// Two steady-state shapes per engine:
//   * Hold/N        — schedule+pop with N events always pending (the
//                     simulator's timer/workload mix),
//   * CancelHeavy/N — every other event is cancelled before it fires (churn
//                     cancelling peer timers; the legacy engine pays the
//                     side-table + skim cost here).
// The BM_ShardWorld/K rows measure the same message-plane workload at K
// shards on the shared pool; tools/check_shard_speedup.py pairs K=1 vs K=4
// and gates the parallel speedup (BENCH_shard.json artifact), skipping on
// hosts with fewer than 4 hardware threads.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "legacy_event_queue.hpp"
#include "qsa/harness/grid.hpp"
#include "qsa/harness/shard_world.hpp"
#include "qsa/sim/event_queue.hpp"
#include "qsa/sim/time.hpp"

namespace {

using namespace qsa;

// Deterministic pseudo-times: enough spread that heap paths are exercised,
// no RNG in the measured loop.
inline sim::SimTime jittered(std::uint64_t i) {
  return sim::SimTime::millis(
      static_cast<std::int64_t>((i * 2654435761ULL) % 100'000));
}

template <typename Queue>
void hold_steady(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Queue q;
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    q.schedule(jittered(i), [&sink] { ++sink; });
  }
  std::uint64_t i = n;
  for (auto _ : state) {
    auto fired = q.pop();
    fired.action();
    q.schedule(fired.time + jittered(i++), [&sink] { ++sink; });
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

template <typename Queue>
void cancel_heavy(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Queue q;
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    q.schedule(jittered(i), [&sink] { ++sink; });
  }
  std::uint64_t i = n;
  for (auto _ : state) {
    // Two schedules, one cancel, one fire per iteration: a 1:1
    // cancel-to-fire mix at exactly constant population.
    auto fired = q.pop();
    fired.action();
    q.schedule(fired.time + jittered(i++), [&sink] { ++sink; });
    auto doomed = q.schedule(fired.time + jittered(i++), [&sink] { ++sink; });
    q.cancel(doomed);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * 2);
}

void BM_EventQueueHold(benchmark::State& state) {
  hold_steady<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueHold)->Arg(256)->Arg(4096)->Arg(65536);

void BM_EventQueueLegacyHold(benchmark::State& state) {
  hold_steady<bench::legacy::EventQueue>(state);
}
BENCHMARK(BM_EventQueueLegacyHold)->Arg(256)->Arg(4096)->Arg(65536);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  cancel_heavy<sim::EventQueue>(state);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(256)->Arg(4096)->Arg(65536);

void BM_EventQueueLegacyCancelHeavy(benchmark::State& state) {
  cancel_heavy<bench::legacy::EventQueue>(state);
}
BENCHMARK(BM_EventQueueLegacyCancelHeavy)->Arg(256)->Arg(4096)->Arg(65536);

// Whole-grid wall-clock: the fig5-shaped workload at a laptop scale. Not
// paired against a legacy row (the library has one engine); the checker
// prints its events/sec as context and CI archives it in BENCH_sim.json.
void BM_GridWallclock(benchmark::State& state) {
  double events = 0;
  for (auto _ : state) {
    harness::GridConfig cfg;
    cfg.seed = 11;
    cfg.peers = 500;
    cfg.min_providers = 10;
    cfg.max_providers = 20;
    cfg.apps.applications = 5;
    cfg.requests.rate_per_min = static_cast<double>(state.range(0));
    cfg.churn.events_per_min = 6;
    cfg.horizon = sim::SimTime::minutes(10);
    harness::GridSimulation grid(cfg);
    const auto r = grid.run();
    benchmark::DoNotOptimize(r.requests);
    events += static_cast<double>(grid.simulator().executed_events());
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(events, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GridWallclock)->Arg(60)->Arg(240)->Unit(benchmark::kMillisecond);

// The sharded message-plane engine at K = range(0) shards: one large cell
// (~2k peers, every peer probing/looking-up/reserving on a 250 ms tick), the
// digest identical for every K by construction (the golden suite pins it).
// Counters: merged events/sec, the barrier idle fraction (summed worker
// wait / summed worker wall), per-shard event balance, and the host's
// hardware threads so the speedup gate can tell a 1-core runner from a
// regression.
void BM_ShardWorld(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  double events = 0;
  double idle_ms = 0;
  double busy_ms = 0;
  double balance = 1.0;
  for (auto _ : state) {
    harness::ShardWorldConfig cfg;
    cfg.seed = 11;
    cfg.peers = 2048;
    cfg.shards = shards;
    cfg.horizon = sim::SimTime::seconds(8);
    cfg.tick_period = sim::SimTime::millis(250);
    // A 5 ms delay floor widens the conservative window 5x (~350 events per
    // epoch instead of ~70): the bench measures shard throughput, not
    // barrier overhead at the finest admissible lookahead.
    cfg.min_delay = sim::SimTime::millis(5);
    harness::ShardWorld world(cfg);
    const auto r = world.run();
    benchmark::DoNotOptimize(r.digest);
    events += static_cast<double>(r.events);
    idle_ms += r.runtime.idle_ms;
    busy_ms += r.runtime.busy_ms;
    std::uint64_t lo = r.runtime.shard_events[0], hi = lo;
    for (std::uint64_t e : r.runtime.shard_events) {
      lo = e < lo ? e : lo;
      hi = e > hi ? e : hi;
    }
    balance = hi > 0 ? static_cast<double>(lo) / static_cast<double>(hi) : 1.0;
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(events, benchmark::Counter::kIsRate);
  const double wall = idle_ms + busy_ms;
  state.counters["idle_fraction"] = wall > 0 ? idle_ms / wall : 0.0;
  state.counters["shard_balance"] = balance;
  state.counters["hw_threads"] =
      static_cast<double>(std::thread::hardware_concurrency());
}
BENCHMARK(BM_ShardWorld)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
