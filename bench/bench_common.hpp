// Shared plumbing for the figure-regeneration benches: scale handling,
// result-table emission, and the standard experiment header block.
//
// Every bench accepts:
//   --scale=F     population scale factor (default 0.1; 1 = paper scale;
//                 also via env QSA_SCALE). Peer count, request rate and
//                 churn rate scale together, preserving the figures' shape.
//   --seed=N      root seed (default 42)
//   --threads=N   experiment-runner threads (default: hardware)
//   --csv         additionally emit the series as CSV
//   --metrics-out=FILE  write a per-cell metrics sidecar (JSON); enables
//                 observability on every cell. Byte-identical across
//                 --threads values.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "qsa/harness/experiment.hpp"
#include "qsa/metrics/table.hpp"
#include "qsa/obs/export.hpp"
#include "qsa/util/flags.hpp"

namespace qsa::bench {

struct BenchOptions {
  double scale = 0.1;
  std::uint64_t seed = 42;
  std::size_t threads = 0;
  bool csv = false;
  std::string metrics_out;  ///< --metrics-out=FILE; empty = no sidecar
};

/// Reads the shared options off the caller's Flags instance. Benches pass
/// their one Flags object here and to their own get*() calls, so the
/// unknown-flag check (util::reject_unknown_flags, called after the last
/// lookup) sees the full vocabulary.
inline BenchOptions parse_options(util::Flags& flags) {
  BenchOptions opt;
  opt.scale = flags.get_double("scale", harness::GridConfig::env_scale(0.1));
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  opt.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  opt.csv = flags.get_bool("csv", false);
  opt.metrics_out = flags.get("metrics-out", "");
  return opt;
}

/// Switches every cell to observed mode when a metrics sidecar was
/// requested; call after building the cell list, before running it.
inline void enable_observability(std::vector<harness::ExperimentCell>& cells,
                                 const BenchOptions& opt) {
  if (opt.metrics_out.empty()) return;
  for (auto& cell : cells) cell.config.observe = true;
}

/// Writes `{"bench":...,"cells":[{"label":...,"metrics":{...}},...]}` to
/// opt.metrics_out. No-op when --metrics-out was not given.
inline void write_metrics_sidecar(
    const char* bench_name,
    const std::vector<harness::ExperimentResult>& results,
    const BenchOptions& opt) {
  if (opt.metrics_out.empty()) return;
  std::ofstream os(opt.metrics_out);
  if (!os) {
    std::fprintf(stderr, "cannot open --metrics-out file %s\n",
                 opt.metrics_out.c_str());
    return;
  }
  os << "{\"bench\":\"" << bench_name << "\",\"cells\":[";
  bool first = true;
  for (const auto& r : results) {
    if (!first) os << ',';
    first = false;
    os << "{\"label\":\"";
    for (char c : r.label) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    std::string metrics = r.metrics_json;  // strip the trailing newline
    while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
    os << "\",\"metrics\":" << (metrics.empty() ? "{}" : metrics) << '}';
  }
  os << "]}\n";
  std::printf("metrics sidecar -> %s\n", opt.metrics_out.c_str());
}

inline void print_header(const char* experiment, const char* paper_setup,
                         const BenchOptions& opt,
                         const harness::GridConfig& cfg) {
  std::printf("=== %s ===\n", experiment);
  std::printf("paper setup : %s\n", paper_setup);
  std::printf("this run    : scale=%.3g -> %zu peers, seed=%llu\n", opt.scale,
              cfg.peers, static_cast<unsigned long long>(opt.seed));
  std::printf("\n");
}

inline void emit(const metrics::Table& table, const BenchOptions& opt) {
  table.print(std::cout);
  if (opt.csv) {
    std::printf("\n--- CSV ---\n");
    table.print_csv(std::cout);
  }
  std::printf("\n");
}

/// The paper's base experimental configuration at the requested scale.
inline harness::GridConfig paper_config(const BenchOptions& opt) {
  harness::GridConfig cfg;
  cfg.seed = opt.seed;
  cfg.scale(opt.scale);
  return cfg;
}

}  // namespace qsa::bench
