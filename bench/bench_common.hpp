// Shared plumbing for the figure-regeneration benches: scale handling,
// result-table emission, and the standard experiment header block.
//
// Every bench accepts:
//   --scale=F     population scale factor (default 0.1; 1 = paper scale;
//                 also via env QSA_SCALE). Peer count, request rate and
//                 churn rate scale together, preserving the figures' shape.
//   --seed=N      root seed (default 42)
//   --threads=N   experiment-runner threads (default: hardware)
//   --csv         additionally emit the series as CSV
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "qsa/harness/experiment.hpp"
#include "qsa/metrics/table.hpp"
#include "qsa/util/flags.hpp"

namespace qsa::bench {

struct BenchOptions {
  double scale = 0.1;
  std::uint64_t seed = 42;
  std::size_t threads = 0;
  bool csv = false;
};

inline BenchOptions parse_options(int argc, char** argv) {
  util::Flags flags(argc, argv);
  BenchOptions opt;
  opt.scale = flags.get_double("scale", harness::GridConfig::env_scale(0.1));
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  opt.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  opt.csv = flags.get_bool("csv", false);
  return opt;
}

inline void print_header(const char* experiment, const char* paper_setup,
                         const BenchOptions& opt,
                         const harness::GridConfig& cfg) {
  std::printf("=== %s ===\n", experiment);
  std::printf("paper setup : %s\n", paper_setup);
  std::printf("this run    : scale=%.3g -> %zu peers, seed=%llu\n", opt.scale,
              cfg.peers, static_cast<unsigned long long>(opt.seed));
  std::printf("\n");
}

inline void emit(const metrics::Table& table, const BenchOptions& opt) {
  table.print(std::cout);
  if (opt.csv) {
    std::printf("\n--- CSV ---\n");
    table.print_csv(std::cout);
  }
  std::printf("\n");
}

/// The paper's base experimental configuration at the requested scale.
inline harness::GridConfig paper_config(const BenchOptions& opt) {
  harness::GridConfig cfg;
  cfg.seed = opt.seed;
  cfg.scale(opt.scale);
  return cfg;
}

}  // namespace qsa::bench
