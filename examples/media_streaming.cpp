// Media streaming: the paper's motivating scenario — a video-on-demand
// delivery composed from four application services
//
//   video server -> transcoder -> caption translator -> video player
//
// built directly against the library's low-level API (no generated
// catalog): we hand-author service instances with concrete formats and
// quality windows, then watch QCS negotiate a QoS-consistent path for a
// high-quality and a low-quality user and the peer selector place it.
#include <cstdio>
#include <string>

#include "qsa/core/compose.hpp"
#include "qsa/core/select.hpp"
#include "qsa/registry/spec.hpp"
#include "qsa/net/network.hpp"
#include "qsa/net/peer.hpp"
#include "qsa/probe/neighbor_table.hpp"
#include "qsa/qos/satisfy.hpp"
#include "qsa/util/interner.hpp"
#include "qsa/util/rng.hpp"

using namespace qsa;

namespace {

struct Universe {
  util::Interner interner;
  qos::ParamId format = interner.intern("format");
  qos::ParamId level = interner.intern("level");
  qos::Symbol mpeg = interner.intern("MPEG");
  qos::Symbol h261 = interner.intern("H261");
};

registry::InstanceId add_instance(registry::ServiceCatalog& cat, Universe& u,
                                  registry::ServiceId svc,
                                  const char* description,
                                  std::optional<qos::Symbol> in_format,
                                  double in_lo, double in_hi,
                                  qos::Symbol out_format, double out_lo,
                                  double out_hi, double cpu, double mem,
                                  double bw) {
  registry::ServiceInstance inst;
  inst.service = svc;
  if (in_hi >= in_lo) {
    inst.qin.set(u.level, qos::QosValue::range(in_lo, in_hi));
    if (in_format) inst.qin.set(u.format, qos::QosValue::symbol(*in_format));
  }
  inst.qout.set(u.level, qos::QosValue::range(out_lo, out_hi));
  inst.qout.set(u.format, qos::QosValue::symbol(out_format));
  inst.resources = qos::ResourceVector{cpu, mem};
  inst.bandwidth_kbps = bw;
  const auto id = cat.add_instance(inst);
  std::printf("  registered %-28s (instance %u) out=%s level=[%g,%g]\n",
              description, id,
              std::string(
                  cat.instance(id).qout.get(u.format)->sym() == u.mpeg
                      ? "MPEG"
                      : "H261")
                  .c_str(),
              out_lo, out_hi);
  return id;
}

}  // namespace

int main() {
  Universe u;
  registry::ServiceCatalog catalog;

  std::printf("-- service universe --\n");
  const auto server = catalog.add_service("video-server");
  const auto transcoder = catalog.add_service("transcoder");
  const auto translator = catalog.add_service("caption-translator");
  const auto player = catalog.add_service("video-player");

  // Video servers (sources: no input).
  const auto srv_hq = add_instance(catalog, u, server, "archive server (HQ MPEG)",
                                   {}, 1, 0, u.mpeg, 80, 85, 40, 60, 900);
  add_instance(catalog, u, server, "mirror server (LQ H261)", {}, 1, 0, u.h261,
               30, 35, 15, 20, 120);

  // Transcoders.
  add_instance(catalog, u, transcoder, "mpeg passthrough", u.mpeg, 60, 100,
               u.mpeg, 75, 80, 20, 20, 800);
  const auto trans_down = add_instance(catalog, u, transcoder,
                                       "mpeg->h261 downscaler", u.mpeg, 50,
                                       100, u.h261, 45, 50, 80, 40, 300);
  add_instance(catalog, u, transcoder, "h261 passthrough", u.h261, 10, 60,
               u.h261, 28, 33, 10, 10, 110);

  // Caption translators (Chinese -> English, per the paper's example).
  add_instance(catalog, u, translator, "subtitle engine (MPEG)", u.mpeg, 60,
               100, u.mpeg, 70, 78, 60, 80, 780);
  const auto subs_lq = add_instance(catalog, u, translator,
                                    "subtitle engine (H261)", u.h261, 20, 60,
                                    u.h261, 40, 48, 30, 40, 280);

  // Players (the sink service).
  add_instance(catalog, u, player, "desktop player", u.mpeg, 60, 100, u.mpeg,
               65, 75, 50, 90, 760);
  const auto player_lite = add_instance(catalog, u, player, "handheld player",
                                        u.h261, 30, 60, u.h261, 35, 45, 15,
                                        25, 260);

  core::QcsComposer composer(catalog, qos::TupleWeights::uniform(2),
                             qos::ResourceSchema::paper());

  // The user states the abstract service path textually, exactly as the
  // paper's example does ("video server -> translator -> ... -> player").
  const auto parsed_path = registry::parse_abstract_path(
      "video-server -> transcoder -> caption-translator -> video-player",
      catalog);
  if (!parsed_path.ok()) {
    std::printf("path parse error: %s\n", parsed_path.error.c_str());
    return 1;
  }
  (void)server;
  (void)transcoder;
  (void)translator;
  (void)player;
  core::CompositionRequest request;
  for (auto svc : parsed_path.value) {
    const auto span = catalog.instances_of(svc);
    request.candidates.emplace_back(span.begin(), span.end());
  }

  auto run_user = [&](const char* who, const char* requirement_text) {
    std::printf("\n-- %s user requires \"%s\" --\n", who, requirement_text);
    const auto parsed = registry::parse_requirement(requirement_text,
                                                    u.interner, u.interner);
    if (!parsed.ok()) {
      std::printf("  requirement parse error: %s\n", parsed.error.c_str());
      return core::CompositionResult{};
    }
    request.requirement = parsed.value;
    const auto result = composer.compose(request);
    if (!result.success) {
      std::printf("  no QoS-consistent path exists\n");
      return result;
    }
    std::printf("  QCS path (aggregated cost %.4f):\n", result.cost);
    for (const auto id : result.instances) {
      const auto& inst = catalog.instance(id);
      std::printf("    %-20s instance %-3u R=%s b=%.0f kbps\n",
                  catalog.service(inst.service).name.c_str(), id,
                  inst.resources.to_string().c_str(), inst.bandwidth_kbps);
    }
    return result;
  };

  const auto hq = run_user("high-quality", "level in [60, 100]");
  const auto lq = run_user("handheld", "level in [35, 100]");

  // The two users get genuinely different pipelines.
  if (hq.success && lq.success) {
    std::printf("\nHQ pipeline keeps MPEG end to end; the handheld pipeline "
                "routes through %s and %s down to instance %u.\n",
                catalog.service(catalog.instance(trans_down).service)
                    .name.c_str(),
                catalog.service(catalog.instance(subs_lq).service)
                    .name.c_str(),
                player_lite);
    (void)srv_hq;
  }

  // Now place the handheld pipeline on peers with the dynamic peer
  // selector: 8 candidate hosts per instance with mixed load and uptime.
  std::printf("\n-- dynamic peer selection for the handheld pipeline --\n");
  net::PeerTable peers(qos::ResourceSchema::paper(),
                       net::ProbeClock(sim::SimTime::seconds(30)));
  net::NetworkModel net(7, net::ProbeClock(sim::SimTime::seconds(30)));
  probe::NeighborResolution neighbors(100, sim::SimTime::minutes(60));
  core::PeerSelector selector(qos::TupleWeights::uniform(2),
                              qos::ResourceSchema::paper());
  util::Rng rng(3);

  const auto user_host =
      peers.add_peer(qos::ResourceVector{300, 300}, sim::SimTime::minutes(-45));
  std::vector<std::vector<net::PeerId>> hop_candidates;  // sink -> source
  for (std::size_t i = lq.instances.size(); i-- > 0;) {
    std::vector<net::PeerId> cands;
    for (int c = 0; c < 8; ++c) {
      const double cap = rng.uniform(120, 1000);
      cands.push_back(peers.add_peer(qos::ResourceVector{cap, cap},
                                     sim::SimTime::minutes(-rng.uniform(1, 240))));
    }
    hop_candidates.push_back(std::move(cands));
  }
  neighbors.register_path(user_host, hop_candidates, sim::SimTime::zero());

  net::PeerId current = user_host;
  for (std::size_t hop = 1; hop <= lq.instances.size(); ++hop) {
    const auto& inst =
        catalog.instance(lq.instances[lq.instances.size() - hop]);
    const auto& cands = hop_candidates[hop - 1];
    neighbors.prepare_selection(current, cands, static_cast<std::uint8_t>(hop),
                                current == user_host, sim::SimTime::zero());
    const auto sel = selector.select_hop(
        peers, net, neighbors.table(current), current, inst, cands,
        sim::SimTime::minutes(20), sim::SimTime::zero(), rng);
    if (!sel.ok()) {
      std::printf("  hop %zu: no acceptable peer\n", hop);
      return 1;
    }
    std::printf("  hop %zu: %-20s -> peer %-4u (capacity %s, uptime %.0f min)\n",
                hop, catalog.service(inst.service).name.c_str(), sel.peer,
                peers.peer(sel.peer).capacity().to_string().c_str(),
                peers.peer(sel.peer).uptime(sim::SimTime::zero()).as_minutes());
    current = sel.peer;
  }
  std::printf("\ndelivery starts by backtracking the selected peer path.\n");
  return 0;
}
