// Quickstart: build a small P2P computing grid, submit one application
// request through the full QSA pipeline (discover -> compose -> select ->
// admit), and watch the session run to completion.
//
//   ./examples/quickstart [--peers=500] [--seed=42]
#include <cstdio>

#include "qsa/harness/grid.hpp"
#include "qsa/util/flags.hpp"
#include "qsa/workload/apps.hpp"

int main(int argc, char** argv) {
  using namespace qsa;
  util::Flags flags(argc, argv);

  // 1. Configure a grid. GridConfig defaults to the paper's Section 4.1
  //    setup; we shrink it so the example runs instantly.
  harness::GridConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  config.peers = static_cast<std::size_t>(flags.get_int("peers", 500));
  util::reject_unknown_flags(flags, "quickstart");
  config.min_providers = 20;
  config.max_providers = 40;
  harness::GridSimulation grid(config);

  std::printf("grid: %zu peers, %zu services, %zu service instances\n",
              grid.peers().alive_count(), grid.catalog().service_count(),
              grid.catalog().instance_count());

  // 2. Build a user request: the first generated application, an "average"
  //    end-to-end QoS requirement, a 10-minute session.
  const workload::Application& app = grid.apps().apps()[0];
  core::ServiceRequest request;
  request.requester = grid.peers().alive_ids()[0];
  request.abstract_path = app.path;
  request.requirement = workload::requirement_for(
      workload::QosLevel::kAverage, grid.universe());
  request.session_duration = sim::SimTime::minutes(10);

  std::printf("request: app%u with %zu services, average QoS, 10 min, "
              "from peer %u\n",
              app.id, app.path.size(), request.requester);

  // 3. Aggregate: tier 1 (discovery + QCS composition) and tier 2
  //    (hop-by-hop dynamic peer selection).
  const core::AggregationPlan plan = grid.submit_request(request);
  if (!plan.ok()) {
    std::printf("aggregation failed: %s\n",
                std::string(core::to_string(plan.failure)).c_str());
    return 1;
  }
  std::printf("composed service path (cost %.4f, %d lookup hops):\n",
              plan.composition_cost, plan.lookup_hops);
  for (std::size_t i = 0; i < plan.instances.size(); ++i) {
    const auto& inst = grid.catalog().instance(plan.instances[i]);
    std::printf("  hop %zu: %-14s instance %-4u on peer %-5u R=%s b=%.0f kbps\n",
                plan.instances.size() - i,  // hop index, sink = hop 1
                grid.catalog().service(inst.service).name.c_str(), inst.id,
                plan.hosts[i], inst.resources.to_string().c_str(),
                inst.bandwidth_kbps);
  }

  // 4. Admit the session (reserves resources along the whole path) and run
  //    the simulation until it completes.
  const auto cause = grid.sessions().start_session(request, plan);
  if (cause != core::FailureCause::kNone) {
    std::printf("admission failed: %s\n",
                std::string(core::to_string(cause)).c_str());
    return 1;
  }
  std::printf("session admitted; %zu active session(s)\n",
              grid.sessions().active_sessions());

  grid.simulator().run_until(sim::SimTime::minutes(11));
  std::printf("after 11 simulated minutes: %zu active, %llu completed\n",
              grid.sessions().active_sessions(),
              static_cast<unsigned long long>(grid.sessions().stats().completed));
  return 0;
}
