// grid_cli: run one fully configurable grid simulation from the command
// line and print the complete accounting — the "kick the tires" driver for
// the whole library.
//
//   ./examples/grid_cli --peers=2000 --rate=80 --minutes=60
//       --algorithm=qsa --overlay=can --churn=20 --recovery --retries=1
//       --probe-budget=100 --seed=7 --csv
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "qsa/harness/grid.hpp"
#include "qsa/metrics/table.hpp"
#include "qsa/obs/export.hpp"
#include "qsa/obs/sink.hpp"
#include "qsa/util/flags.hpp"

using namespace qsa;

namespace {

void print_usage() {
  std::printf(
      "grid_cli — run one QSA grid simulation\n\n"
      "  --peers=N          population (default 1000)\n"
      "  --rate=R           requests/min (default 100)\n"
      "  --minutes=M        simulated horizon (default 60)\n"
      "  --algorithm=A      qsa | random | fixed (default qsa)\n"
      "  --overlay=O        chord | can | pastry (default chord)\n"
      "  --discovery=D      directory | dht (default directory). dht swaps\n"
      "                     the flat per-service lookup for the attribute\n"
      "                     index: QoS range predicates resolved by bounded\n"
      "                     scans over order-preserving key arcs\n"
      "  --index-expiry-epochs=K  republish epochs an unrefreshed index\n"
      "                     posting survives before the sweep reclaims it\n"
      "                     (default 2; dht only)\n"
      "  --net-model=N      paper | coords (default paper). coords derives\n"
      "                     latency/bandwidth from per-peer synthetic\n"
      "                     coordinates — same marginals, O(peers) state —\n"
      "                     for million-peer runs\n"
      "  --churn=C          churn events/min (default 0)\n"
      "  --recovery         enable mid-session departure recovery\n"
      "  --retries=K        admission retries (default 0)\n"
      "  --probe-budget=M   neighbors probed per peer (default 100)\n"
      "  --bw-weight=W      bandwidth importance weight (default uniform)\n"
      "  --discovery-cache-ttl=S  requester-side discovery cache TTL in\n"
      "                     seconds (default 0 = off; cached lookups cost\n"
      "                     zero hops/latency until the entry expires)\n"
      "  --no-compose-cache disable the compatibility/cost memo tables\n"
      "                     (results are bit-identical either way)\n"
      "  --fault-loss=P     message loss probability on every channel\n"
      "                     (default 0 = perfect messaging)\n"
      "  --fault-delay-ms=D max extra delay on delivered messages (default 0)\n"
      "  --fault-retries=K  resends per lost message (default 2)\n"
      "  --replication      enable demand-driven service replication\n"
      "                     (off by default; off = byte-identical output)\n"
      "  --replica-threshold=T  demand score that trips a clone (default 4)\n"
      "  --replica-cooldown=S   refractory/retirement period in seconds\n"
      "                     (default 120)\n"
      "  --max-replicas=K   clone cap per service instance (default 8)\n"
      "  --track-load       provider-load concentration accounting without\n"
      "                     replication (implied by --replication)\n"
      "  --seed=S           root seed (default 42)\n"
      "  --shards=K         worker shards for the order-free phases: K>1\n"
      "                     fans the bootstrap's overlay stabilization out\n"
      "                     over the shared thread pool (default 1; output\n"
      "                     is byte-identical for any K)\n"
      "  --profile          wall-clock the bootstrap and event-loop phases\n"
      "                     (summary on stderr; with --metrics-out, also\n"
      "                     perf.* gauges — host timings, non-deterministic)\n"
      "  --csv              also emit the psi time series as CSV\n"
      "  --trace-out=FILE   stream the per-request trace as JSON lines\n"
      "                     (written incrementally as requests finish)\n"
      "  --trace-sample=K   keep 1-in-K request traces, chosen head-based\n"
      "                     from (seed, request id) — deterministic at any\n"
      "                     thread count; failure counters stay exact\n"
      "                     (default 1 = keep all)\n"
      "  --flight-recorder=K  retain the full span chains of the last K\n"
      "                     failed/recovered requests per failure cause,\n"
      "                     regardless of sampling (default 0 = off)\n"
      "  --flight-out=FILE  write the flight recorder's chains as JSON\n"
      "                     lines (implies --flight-recorder=8 if unset)\n"
      "  --obs-window-ms=M  sample live time-series (windowed psi, queue\n"
      "                     depth, cache hit rates, replica counts) every\n"
      "                     M sim-milliseconds (default 0 = off)\n"
      "  --series-out=FILE  write the live time-series as CSV rows\n"
      "                     `series,time_ms,value` (implies a 2-minute\n"
      "                     --obs-window-ms if unset)\n"
      "  --metrics-out=FILE write the metrics snapshot (CSV if FILE ends\n"
      "                     in .csv, JSON otherwise)\n");
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  if (flags.help()) {
    print_usage();
    return 0;
  }

  harness::GridConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  cfg.peers = static_cast<std::size_t>(flags.get_int("peers", 1000));
  cfg.requests.rate_per_min = flags.get_double("rate", 100);
  cfg.horizon = sim::SimTime::minutes(flags.get_double("minutes", 60));
  cfg.churn.events_per_min = flags.get_double("churn", 0);
  cfg.enable_recovery = flags.get_bool("recovery", false);
  cfg.admission_retries = static_cast<int>(flags.get_int("retries", 0));
  cfg.probe_budget =
      static_cast<std::size_t>(flags.get_int("probe-budget", 100));
  cfg.bandwidth_weight = flags.get_double("bw-weight", -1);
  cfg.discovery_cache_ttl =
      sim::SimTime::seconds(flags.get_double("discovery-cache-ttl", 0));
  cfg.compose_caches = !flags.get_bool("no-compose-cache", false);
  cfg.faults.set_all_loss(flags.get_double("fault-loss", 0));
  cfg.faults.max_extra_delay = sim::SimTime::millis(
      static_cast<std::int64_t>(flags.get_int("fault-delay-ms", 0)));
  cfg.faults.max_retries = static_cast<int>(flags.get_int("fault-retries", 2));
  cfg.replication.enabled = flags.get_bool("replication", false);
  cfg.replication.threshold = flags.get_double(
      "replica-threshold", cfg.replication.threshold);
  cfg.replication.cooldown = sim::SimTime::seconds(flags.get_double(
      "replica-cooldown", cfg.replication.cooldown.as_seconds()));
  cfg.replication.max_replicas = static_cast<int>(
      flags.get_int("max-replicas", cfg.replication.max_replicas));
  cfg.track_load = flags.get_bool("track-load", false);
  cfg.shards = static_cast<std::size_t>(flags.get_int("shards", 1));
  cfg.profile = flags.get_bool("profile", false);
  const std::string trace_out = flags.get("trace-out", "");
  const std::string metrics_out = flags.get("metrics-out", "");
  const std::string flight_out = flags.get("flight-out", "");
  const std::string series_out = flags.get("series-out", "");
  cfg.trace_sample =
      static_cast<std::uint32_t>(flags.get_int("trace-sample", 1));
  cfg.flight_recorder = static_cast<std::uint32_t>(flags.get_int(
      "flight-recorder", flight_out.empty() ? 0 : 8));
  cfg.obs_window = sim::SimTime::millis(flags.get_int(
      "obs-window-ms",
      series_out.empty() ? 0 : sim::SimTime::minutes(2).as_millis()));
  cfg.observe = !trace_out.empty() || !metrics_out.empty() ||
                !flight_out.empty() || !series_out.empty() ||
                cfg.trace_sample > 1 || cfg.flight_recorder > 0 ||
                cfg.obs_window.as_millis() > 0;

  // Enum-valued flags through the shared choice parser: an inadmissible
  // value prints the admissible set and exits 2, like an unknown flag.
  static constexpr util::Choice<harness::AlgorithmKind> kAlgorithms[] = {
      {"qsa", harness::AlgorithmKind::kQsa},
      {"random", harness::AlgorithmKind::kRandom},
      {"fixed", harness::AlgorithmKind::kFixed},
  };
  cfg.algorithm = util::get_choice(flags, "algorithm", kAlgorithms,
                                   harness::AlgorithmKind::kQsa, "grid_cli");
  static constexpr util::Choice<net::NetModelKind> kNetModels[] = {
      {"paper", net::NetModelKind::kPaper},
      {"coords", net::NetModelKind::kCoords},
  };
  cfg.net_model = util::get_choice(flags, "net-model", kNetModels,
                                   net::NetModelKind::kPaper, "grid_cli");
  static constexpr util::Choice<harness::OverlayKind> kOverlays[] = {
      {"chord", harness::OverlayKind::kChord},
      {"can", harness::OverlayKind::kCan},
      {"pastry", harness::OverlayKind::kPastry},
  };
  cfg.overlay = util::get_choice(flags, "overlay", kOverlays,
                                 harness::OverlayKind::kChord, "grid_cli");
  static constexpr util::Choice<harness::DiscoveryKind> kDiscoveries[] = {
      {"directory", harness::DiscoveryKind::kDirectory},
      {"dht", harness::DiscoveryKind::kDht},
  };
  cfg.discovery = util::get_choice(flags, "discovery", kDiscoveries,
                                   harness::DiscoveryKind::kDirectory,
                                   "grid_cli");
  cfg.index_expiry_epochs = static_cast<int>(
      flags.get_int("index-expiry-epochs", cfg.index_expiry_epochs));
  const bool emit_csv = flags.get_bool("csv", false);

  // Every recognized flag has been consulted by now; anything left in argv
  // is a typo that would otherwise silently run the wrong experiment.
  if (const auto bad = flags.unknown(); !bad.empty()) {
    for (const auto& f : bad) std::printf("unknown flag --%s\n", f.c_str());
    std::printf("\n");
    print_usage();
    return 2;
  }

  std::printf("qsa grid: %zu peers, %s algorithm on %s overlay (%s "
              "discovery), %.4g req/min, %.4g churn/min, %.4g min horizon\n\n",
              cfg.peers, std::string(to_string(cfg.algorithm)).c_str(),
              std::string(harness::to_string(cfg.overlay)).c_str(),
              std::string(harness::to_string(cfg.discovery)).c_str(),
              cfg.requests.rate_per_min, cfg.churn.events_per_min,
              cfg.horizon.as_minutes());

  harness::GridSimulation grid(cfg);

  // The trace streams out while the simulation runs (completed requests
  // flush incrementally), so the sink must exist before run().
  std::ofstream trace_os;
  std::unique_ptr<obs::JsonlSpanSink> trace_sink;
  if (!trace_out.empty()) {
    trace_os.open(trace_out);
    if (!trace_os) {
      std::printf("cannot open --trace-out file '%s'\n", trace_out.c_str());
      return 1;
    }
    trace_sink = std::make_unique<obs::JsonlSpanSink>(trace_os);
    grid.set_span_sink(trace_sink.get());
  }
  std::ofstream series_os;
  std::unique_ptr<obs::CsvMetricSink> series_sink;
  if (!series_out.empty()) {
    series_os.open(series_out);
    if (!series_os) {
      std::printf("cannot open --series-out file '%s'\n", series_out.c_str());
      return 1;
    }
    series_sink = std::make_unique<obs::CsvMetricSink>(series_os);
    grid.set_series_sink(series_sink.get());
  }

  const auto r = grid.run();

  std::printf("requests                 %llu\n",
              static_cast<unsigned long long>(r.requests));
  std::printf("success ratio (psi)      %.2f%%\n", 100 * r.success_ratio());
  std::printf("failures: discovery      %llu\n",
              static_cast<unsigned long long>(r.failures_discovery));
  std::printf("          composition    %llu\n",
              static_cast<unsigned long long>(r.failures_composition));
  std::printf("          selection      %llu\n",
              static_cast<unsigned long long>(r.failures_selection));
  std::printf("          admission      %llu\n",
              static_cast<unsigned long long>(r.failures_admission));
  std::printf("          departure      %llu\n",
              static_cast<unsigned long long>(r.failures_departure));
  std::printf("lookup hops / request    %.2f\n",
              r.requests ? static_cast<double>(r.lookup_hops) /
                               static_cast<double>(r.requests)
                         : 0.0);
  std::printf("avg composition cost     %.4f\n", r.avg_composition_cost);
  std::printf("notification messages    %llu\n",
              static_cast<unsigned long long>(r.notification_messages));
  std::printf("churn: departures        %llu, arrivals %llu\n",
              static_cast<unsigned long long>(r.churn_departures),
              static_cast<unsigned long long>(r.churn_arrivals));
  for (const auto& [name, value] : r.counters.all()) {
    std::printf("%-24s %llu\n", std::string(name).c_str(),
                static_cast<unsigned long long>(value));
  }

  if (trace_sink != nullptr) {
    trace_sink->flush();
    std::printf("trace   -> %s (%llu spans)\n", trace_out.c_str(),
                static_cast<unsigned long long>(trace_sink->spans_written()));
  }
  if (series_sink != nullptr) {
    series_sink->flush();
    std::printf("series  -> %s\n", series_out.c_str());
  }
  if (!flight_out.empty()) {
    std::ofstream os(flight_out);
    if (!os) {
      std::printf("cannot open --flight-out file '%s'\n", flight_out.c_str());
      return 1;
    }
    // The recorder is bounded (K chains per cause), so this is the one
    // artifact small enough to render whole at end of run.
    const std::string jsonl = grid.flight()->jsonl();
    os.write(jsonl.data(), static_cast<std::streamsize>(jsonl.size()));
    std::printf("flight  -> %s\n", flight_out.c_str());
  }
  if (!metrics_out.empty()) {
    std::ofstream os(metrics_out);
    if (!os) {
      std::printf("cannot open --metrics-out file '%s'\n", metrics_out.c_str());
      return 1;
    }
    const bool csv = metrics_out.size() >= 4 &&
                     metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0;
    if (csv) {
      obs::write_metrics_csv(*grid.metrics(), os);
    } else {
      obs::write_metrics_json(*grid.metrics(), os);
    }
    std::printf("metrics -> %s\n", metrics_out.c_str());
  }

  if (cfg.profile) {
    // stderr, so stdout stays identical to an unprofiled run.
    const harness::ProfileReport& p = grid.profile_report();
    std::fprintf(stderr,
                 "profile: bootstrap %.1f ms (peers %.1f, overlay %.1f, "
                 "placement %.1f, publish %.1f), run %.1f ms, %llu events "
                 "(%.3g events/sec), queue peak %zu\n",
                 p.bootstrap_ms, p.bootstrap_peers_ms, p.bootstrap_overlay_ms,
                 p.bootstrap_placement_ms, p.bootstrap_publish_ms, p.run_ms,
                 static_cast<unsigned long long>(p.events), p.events_per_sec,
                 p.queue_peak);
  }

  if (emit_csv) {
    metrics::Table series({"minute", "psi"});
    for (const auto& s : r.series.samples()) {
      series.add_row({metrics::Table::num(s.time.as_minutes(), 0),
                      metrics::Table::num(s.value, 3)});
    }
    std::printf("\n");
    series.print_csv(std::cout);
  }
  return 0;
}
