// Churn resilience: demonstrates the uptime heuristic of the dynamic peer
// selection tier. Two identical grids run under heavy topological variation;
// one QSA selector matches candidate uptime against the session duration,
// the other ignores uptime. Sessions placed on long-lived peers survive
// churn measurably more often.
//
//   ./examples/churn_resilience [--minutes=40] [--churn=12]
#include <cstdio>

#include "qsa/harness/grid.hpp"
#include "qsa/util/flags.hpp"

using namespace qsa;

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const double minutes = flags.get_double("minutes", 40);
  const double churn = flags.get_double("churn", 12);
  util::reject_unknown_flags(flags, "churn_resilience");

  harness::GridConfig base;
  base.seed = 31;
  base.peers = 500;
  base.min_providers = 15;
  base.max_providers = 30;
  base.requests.rate_per_min = 25;
  base.churn.events_per_min = churn;
  base.horizon = sim::SimTime::minutes(minutes);
  base.algorithm = harness::AlgorithmKind::kQsa;

  std::printf("grid of %zu peers, %g churn events/min (~%.1f%%/min), "
              "%g req/min, %g minutes\n\n",
              base.peers, churn, 100 * churn / static_cast<double>(base.peers),
              base.requests.rate_per_min, minutes);

  struct Row {
    const char* name;
    harness::GridResult result;
  };
  Row rows[2];

  {
    auto cfg = base;  // uptime filter on (default)
    harness::GridSimulation grid(cfg);
    rows[0] = Row{"uptime-aware", grid.run()};
  }
  {
    auto cfg = base;
    cfg.qsa_options.selector.use_uptime_filter = false;
    harness::GridSimulation grid(cfg);
    rows[1] = Row{"uptime-blind", grid.run()};
  }

  std::printf("%-14s %8s %10s %12s %10s\n", "selector", "requests",
              "psi", "dep-aborts", "admitted");
  for (const auto& row : rows) {
    std::printf("%-14s %8llu %9.1f%% %12llu %10llu\n", row.name,
                static_cast<unsigned long long>(row.result.requests),
                100 * row.result.success_ratio(),
                static_cast<unsigned long long>(row.result.failures_departure),
                static_cast<unsigned long long>(
                    row.result.counters.get("sessions.admitted")));
  }

  std::printf("\nThe uptime-aware selector avoids freshly joined peers for "
              "long sessions, so fewer of its sessions are killed by "
              "departures — the mechanism behind the paper's Figure 7/8 "
              "results.\n");
  return 0;
}
