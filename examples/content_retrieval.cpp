// Content retrieval: the paper's single-hop aggregation example. Many peers
// request the same content service; the example contrasts how QSA's
// Phi-driven peer selection spreads load across replica providers while the
// fixed (client-server) strategy piles every session onto one dedicated
// host.
//
//   ./examples/content_retrieval [--requests=300]
#include <algorithm>
#include <cstdio>
#include <map>

#include "qsa/harness/grid.hpp"
#include "qsa/util/flags.hpp"
#include "qsa/workload/apps.hpp"

using namespace qsa;

namespace {

/// Runs `n` single-service requests through a grid and reports the host
/// distribution plus admission outcomes.
struct Outcome {
  std::map<net::PeerId, int> host_histogram;
  int admitted = 0;
  int rejected = 0;
};

Outcome drive(harness::GridSimulation& grid, int n) {
  Outcome out;
  // Pick the shortest generated application as the "content" app.
  const workload::Application* app = &grid.apps().apps()[0];
  for (const auto& a : grid.apps().apps()) {
    if (a.path.size() < app->path.size()) app = &a;
  }
  util::Rng rng(99);
  for (int i = 0; i < n; ++i) {
    core::ServiceRequest req;
    const auto& alive = grid.peers().alive_ids();
    req.requester = alive[rng.index(alive.size())];
    req.abstract_path = app->path;
    req.requirement =
        workload::requirement_for(workload::QosLevel::kLow, grid.universe());
    req.session_duration = sim::SimTime::minutes(30);
    const auto plan = grid.submit_request(req);
    if (!plan.ok()) {
      ++out.rejected;
      continue;
    }
    if (grid.sessions().start_session(req, plan) == core::FailureCause::kNone) {
      ++out.admitted;
      // Count the host of the *sink* hop (the content server).
      ++out.host_histogram[plan.hosts.back()];
    } else {
      ++out.rejected;
    }
  }
  return out;
}

void report(const char* name, const Outcome& o) {
  int max_load = 0;
  for (const auto& [host, count] : o.host_histogram) {
    max_load = std::max(max_load, count);
  }
  std::printf("%-8s admitted %-4d rejected %-4d distinct hosts %-3zu "
              "max sessions on one host %d\n",
              name, o.admitted, o.rejected, o.host_histogram.size(), max_load);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);
  const int requests = static_cast<int>(flags.get_int("requests", 300));
  util::reject_unknown_flags(flags, "content_retrieval");

  harness::GridConfig config;
  config.seed = 21;
  config.peers = 600;
  config.min_providers = 25;
  config.max_providers = 50;
  config.apps.applications = 5;
  config.apps.min_path_len = 1;  // content retrieval = single hop
  config.apps.max_path_len = 3;

  std::printf("content retrieval, %d concurrent 30-minute sessions\n\n",
              requests);

  Outcome qsa_out, fixed_out;
  {
    auto c = config;
    c.algorithm = harness::AlgorithmKind::kQsa;
    harness::GridSimulation grid(c);
    qsa_out = drive(grid, requests);
  }
  {
    auto c = config;
    c.algorithm = harness::AlgorithmKind::kFixed;
    harness::GridSimulation grid(c);
    fixed_out = drive(grid, requests);
  }

  report("qsa", qsa_out);
  report("fixed", fixed_out);

  std::printf("\nQSA spreads sessions across replica providers (load "
              "balance); fixed funnels them into dedicated servers until "
              "admission control rejects the overflow — the paper's "
              "client-server comparison in miniature.\n");
  return 0;
}
