file(REMOVE_RECURSE
  "../bench/ablation_retry"
  "../bench/ablation_retry.pdb"
  "CMakeFiles/ablation_retry.dir/ablation_retry.cpp.o"
  "CMakeFiles/ablation_retry.dir/ablation_retry.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_retry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
