file(REMOVE_RECURSE
  "../bench/ablation_probe_budget"
  "../bench/ablation_probe_budget.pdb"
  "CMakeFiles/ablation_probe_budget.dir/ablation_probe_budget.cpp.o"
  "CMakeFiles/ablation_probe_budget.dir/ablation_probe_budget.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probe_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
