file(REMOVE_RECURSE
  "../bench/ablation_tiers"
  "../bench/ablation_tiers.pdb"
  "CMakeFiles/ablation_tiers.dir/ablation_tiers.cpp.o"
  "CMakeFiles/ablation_tiers.dir/ablation_tiers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
