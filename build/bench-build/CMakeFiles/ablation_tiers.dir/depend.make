# Empty dependencies file for ablation_tiers.
# This may be replaced when dependencies are built.
