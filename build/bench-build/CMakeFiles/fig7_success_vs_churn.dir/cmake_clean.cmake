file(REMOVE_RECURSE
  "../bench/fig7_success_vs_churn"
  "../bench/fig7_success_vs_churn.pdb"
  "CMakeFiles/fig7_success_vs_churn.dir/fig7_success_vs_churn.cpp.o"
  "CMakeFiles/fig7_success_vs_churn.dir/fig7_success_vs_churn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_success_vs_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
