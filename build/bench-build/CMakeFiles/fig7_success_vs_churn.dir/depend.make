# Empty dependencies file for fig7_success_vs_churn.
# This may be replaced when dependencies are built.
