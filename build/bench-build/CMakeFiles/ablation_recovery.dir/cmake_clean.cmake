file(REMOVE_RECURSE
  "../bench/ablation_recovery"
  "../bench/ablation_recovery.pdb"
  "CMakeFiles/ablation_recovery.dir/ablation_recovery.cpp.o"
  "CMakeFiles/ablation_recovery.dir/ablation_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
