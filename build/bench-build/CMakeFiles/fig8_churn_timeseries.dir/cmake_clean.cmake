file(REMOVE_RECURSE
  "../bench/fig8_churn_timeseries"
  "../bench/fig8_churn_timeseries.pdb"
  "CMakeFiles/fig8_churn_timeseries.dir/fig8_churn_timeseries.cpp.o"
  "CMakeFiles/fig8_churn_timeseries.dir/fig8_churn_timeseries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_churn_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
