# Empty dependencies file for fig8_churn_timeseries.
# This may be replaced when dependencies are built.
