file(REMOVE_RECURSE
  "../bench/ablation_overlay"
  "../bench/ablation_overlay.pdb"
  "CMakeFiles/ablation_overlay.dir/ablation_overlay.cpp.o"
  "CMakeFiles/ablation_overlay.dir/ablation_overlay.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
