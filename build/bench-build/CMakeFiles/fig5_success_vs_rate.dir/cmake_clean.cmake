file(REMOVE_RECURSE
  "../bench/fig5_success_vs_rate"
  "../bench/fig5_success_vs_rate.pdb"
  "CMakeFiles/fig5_success_vs_rate.dir/fig5_success_vs_rate.cpp.o"
  "CMakeFiles/fig5_success_vs_rate.dir/fig5_success_vs_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_success_vs_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
