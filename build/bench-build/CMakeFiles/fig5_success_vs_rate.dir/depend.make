# Empty dependencies file for fig5_success_vs_rate.
# This may be replaced when dependencies are built.
