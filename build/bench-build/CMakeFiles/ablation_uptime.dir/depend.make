# Empty dependencies file for ablation_uptime.
# This may be replaced when dependencies are built.
