file(REMOVE_RECURSE
  "../bench/ablation_uptime"
  "../bench/ablation_uptime.pdb"
  "CMakeFiles/ablation_uptime.dir/ablation_uptime.cpp.o"
  "CMakeFiles/ablation_uptime.dir/ablation_uptime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uptime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
