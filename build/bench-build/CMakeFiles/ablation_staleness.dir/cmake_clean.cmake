file(REMOVE_RECURSE
  "../bench/ablation_staleness"
  "../bench/ablation_staleness.pdb"
  "CMakeFiles/ablation_staleness.dir/ablation_staleness.cpp.o"
  "CMakeFiles/ablation_staleness.dir/ablation_staleness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_staleness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
