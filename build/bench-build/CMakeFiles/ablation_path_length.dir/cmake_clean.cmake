file(REMOVE_RECURSE
  "../bench/ablation_path_length"
  "../bench/ablation_path_length.pdb"
  "CMakeFiles/ablation_path_length.dir/ablation_path_length.cpp.o"
  "CMakeFiles/ablation_path_length.dir/ablation_path_length.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_path_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
