# Empty compiler generated dependencies file for ablation_path_length.
# This may be replaced when dependencies are built.
