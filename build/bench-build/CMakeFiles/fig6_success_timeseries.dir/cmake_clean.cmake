file(REMOVE_RECURSE
  "../bench/fig6_success_timeseries"
  "../bench/fig6_success_timeseries.pdb"
  "CMakeFiles/fig6_success_timeseries.dir/fig6_success_timeseries.cpp.o"
  "CMakeFiles/fig6_success_timeseries.dir/fig6_success_timeseries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_success_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
