file(REMOVE_RECURSE
  "../examples/churn_resilience"
  "../examples/churn_resilience.pdb"
  "CMakeFiles/churn_resilience.dir/churn_resilience.cpp.o"
  "CMakeFiles/churn_resilience.dir/churn_resilience.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
