# Empty dependencies file for grid_cli.
# This may be replaced when dependencies are built.
