file(REMOVE_RECURSE
  "../examples/grid_cli"
  "../examples/grid_cli.pdb"
  "CMakeFiles/grid_cli.dir/grid_cli.cpp.o"
  "CMakeFiles/grid_cli.dir/grid_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
