file(REMOVE_RECURSE
  "../examples/media_streaming"
  "../examples/media_streaming.pdb"
  "CMakeFiles/media_streaming.dir/media_streaming.cpp.o"
  "CMakeFiles/media_streaming.dir/media_streaming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/media_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
