# Empty dependencies file for content_retrieval.
# This may be replaced when dependencies are built.
