file(REMOVE_RECURSE
  "../examples/content_retrieval"
  "../examples/content_retrieval.pdb"
  "CMakeFiles/content_retrieval.dir/content_retrieval.cpp.o"
  "CMakeFiles/content_retrieval.dir/content_retrieval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
