file(REMOVE_RECURSE
  "libqsa_util.a"
)
