# Empty dependencies file for qsa_util.
# This may be replaced when dependencies are built.
