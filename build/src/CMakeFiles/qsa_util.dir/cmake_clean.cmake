file(REMOVE_RECURSE
  "CMakeFiles/qsa_util.dir/qsa/util/flags.cpp.o"
  "CMakeFiles/qsa_util.dir/qsa/util/flags.cpp.o.d"
  "CMakeFiles/qsa_util.dir/qsa/util/interner.cpp.o"
  "CMakeFiles/qsa_util.dir/qsa/util/interner.cpp.o.d"
  "CMakeFiles/qsa_util.dir/qsa/util/rng.cpp.o"
  "CMakeFiles/qsa_util.dir/qsa/util/rng.cpp.o.d"
  "CMakeFiles/qsa_util.dir/qsa/util/thread_pool.cpp.o"
  "CMakeFiles/qsa_util.dir/qsa/util/thread_pool.cpp.o.d"
  "libqsa_util.a"
  "libqsa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
