
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qsa/metrics/counters.cpp" "src/CMakeFiles/qsa_metrics.dir/qsa/metrics/counters.cpp.o" "gcc" "src/CMakeFiles/qsa_metrics.dir/qsa/metrics/counters.cpp.o.d"
  "/root/repo/src/qsa/metrics/stats.cpp" "src/CMakeFiles/qsa_metrics.dir/qsa/metrics/stats.cpp.o" "gcc" "src/CMakeFiles/qsa_metrics.dir/qsa/metrics/stats.cpp.o.d"
  "/root/repo/src/qsa/metrics/table.cpp" "src/CMakeFiles/qsa_metrics.dir/qsa/metrics/table.cpp.o" "gcc" "src/CMakeFiles/qsa_metrics.dir/qsa/metrics/table.cpp.o.d"
  "/root/repo/src/qsa/metrics/timeseries.cpp" "src/CMakeFiles/qsa_metrics.dir/qsa/metrics/timeseries.cpp.o" "gcc" "src/CMakeFiles/qsa_metrics.dir/qsa/metrics/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
