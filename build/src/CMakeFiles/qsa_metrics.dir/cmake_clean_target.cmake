file(REMOVE_RECURSE
  "libqsa_metrics.a"
)
