# Empty compiler generated dependencies file for qsa_metrics.
# This may be replaced when dependencies are built.
