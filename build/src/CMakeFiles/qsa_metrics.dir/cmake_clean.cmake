file(REMOVE_RECURSE
  "CMakeFiles/qsa_metrics.dir/qsa/metrics/counters.cpp.o"
  "CMakeFiles/qsa_metrics.dir/qsa/metrics/counters.cpp.o.d"
  "CMakeFiles/qsa_metrics.dir/qsa/metrics/stats.cpp.o"
  "CMakeFiles/qsa_metrics.dir/qsa/metrics/stats.cpp.o.d"
  "CMakeFiles/qsa_metrics.dir/qsa/metrics/table.cpp.o"
  "CMakeFiles/qsa_metrics.dir/qsa/metrics/table.cpp.o.d"
  "CMakeFiles/qsa_metrics.dir/qsa/metrics/timeseries.cpp.o"
  "CMakeFiles/qsa_metrics.dir/qsa/metrics/timeseries.cpp.o.d"
  "libqsa_metrics.a"
  "libqsa_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsa_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
