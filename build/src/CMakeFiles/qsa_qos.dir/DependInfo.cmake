
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qsa/qos/resources.cpp" "src/CMakeFiles/qsa_qos.dir/qsa/qos/resources.cpp.o" "gcc" "src/CMakeFiles/qsa_qos.dir/qsa/qos/resources.cpp.o.d"
  "/root/repo/src/qsa/qos/satisfy.cpp" "src/CMakeFiles/qsa_qos.dir/qsa/qos/satisfy.cpp.o" "gcc" "src/CMakeFiles/qsa_qos.dir/qsa/qos/satisfy.cpp.o.d"
  "/root/repo/src/qsa/qos/translator.cpp" "src/CMakeFiles/qsa_qos.dir/qsa/qos/translator.cpp.o" "gcc" "src/CMakeFiles/qsa_qos.dir/qsa/qos/translator.cpp.o.d"
  "/root/repo/src/qsa/qos/tuple_compare.cpp" "src/CMakeFiles/qsa_qos.dir/qsa/qos/tuple_compare.cpp.o" "gcc" "src/CMakeFiles/qsa_qos.dir/qsa/qos/tuple_compare.cpp.o.d"
  "/root/repo/src/qsa/qos/value.cpp" "src/CMakeFiles/qsa_qos.dir/qsa/qos/value.cpp.o" "gcc" "src/CMakeFiles/qsa_qos.dir/qsa/qos/value.cpp.o.d"
  "/root/repo/src/qsa/qos/vector.cpp" "src/CMakeFiles/qsa_qos.dir/qsa/qos/vector.cpp.o" "gcc" "src/CMakeFiles/qsa_qos.dir/qsa/qos/vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
