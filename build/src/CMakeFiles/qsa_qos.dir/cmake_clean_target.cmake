file(REMOVE_RECURSE
  "libqsa_qos.a"
)
