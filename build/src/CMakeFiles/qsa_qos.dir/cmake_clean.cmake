file(REMOVE_RECURSE
  "CMakeFiles/qsa_qos.dir/qsa/qos/resources.cpp.o"
  "CMakeFiles/qsa_qos.dir/qsa/qos/resources.cpp.o.d"
  "CMakeFiles/qsa_qos.dir/qsa/qos/satisfy.cpp.o"
  "CMakeFiles/qsa_qos.dir/qsa/qos/satisfy.cpp.o.d"
  "CMakeFiles/qsa_qos.dir/qsa/qos/translator.cpp.o"
  "CMakeFiles/qsa_qos.dir/qsa/qos/translator.cpp.o.d"
  "CMakeFiles/qsa_qos.dir/qsa/qos/tuple_compare.cpp.o"
  "CMakeFiles/qsa_qos.dir/qsa/qos/tuple_compare.cpp.o.d"
  "CMakeFiles/qsa_qos.dir/qsa/qos/value.cpp.o"
  "CMakeFiles/qsa_qos.dir/qsa/qos/value.cpp.o.d"
  "CMakeFiles/qsa_qos.dir/qsa/qos/vector.cpp.o"
  "CMakeFiles/qsa_qos.dir/qsa/qos/vector.cpp.o.d"
  "libqsa_qos.a"
  "libqsa_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsa_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
