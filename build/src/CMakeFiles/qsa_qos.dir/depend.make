# Empty dependencies file for qsa_qos.
# This may be replaced when dependencies are built.
