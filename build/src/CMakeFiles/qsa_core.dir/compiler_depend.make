# Empty compiler generated dependencies file for qsa_core.
# This may be replaced when dependencies are built.
