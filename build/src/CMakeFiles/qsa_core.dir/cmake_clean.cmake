file(REMOVE_RECURSE
  "CMakeFiles/qsa_core.dir/qsa/core/aggregate.cpp.o"
  "CMakeFiles/qsa_core.dir/qsa/core/aggregate.cpp.o.d"
  "CMakeFiles/qsa_core.dir/qsa/core/baselines.cpp.o"
  "CMakeFiles/qsa_core.dir/qsa/core/baselines.cpp.o.d"
  "CMakeFiles/qsa_core.dir/qsa/core/compose.cpp.o"
  "CMakeFiles/qsa_core.dir/qsa/core/compose.cpp.o.d"
  "CMakeFiles/qsa_core.dir/qsa/core/select.cpp.o"
  "CMakeFiles/qsa_core.dir/qsa/core/select.cpp.o.d"
  "libqsa_core.a"
  "libqsa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
