file(REMOVE_RECURSE
  "libqsa_core.a"
)
