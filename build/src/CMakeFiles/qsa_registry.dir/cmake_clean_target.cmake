file(REMOVE_RECURSE
  "libqsa_registry.a"
)
