file(REMOVE_RECURSE
  "CMakeFiles/qsa_registry.dir/qsa/registry/catalog.cpp.o"
  "CMakeFiles/qsa_registry.dir/qsa/registry/catalog.cpp.o.d"
  "CMakeFiles/qsa_registry.dir/qsa/registry/directory.cpp.o"
  "CMakeFiles/qsa_registry.dir/qsa/registry/directory.cpp.o.d"
  "CMakeFiles/qsa_registry.dir/qsa/registry/placement.cpp.o"
  "CMakeFiles/qsa_registry.dir/qsa/registry/placement.cpp.o.d"
  "CMakeFiles/qsa_registry.dir/qsa/registry/service.cpp.o"
  "CMakeFiles/qsa_registry.dir/qsa/registry/service.cpp.o.d"
  "CMakeFiles/qsa_registry.dir/qsa/registry/spec.cpp.o"
  "CMakeFiles/qsa_registry.dir/qsa/registry/spec.cpp.o.d"
  "libqsa_registry.a"
  "libqsa_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsa_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
