
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qsa/registry/catalog.cpp" "src/CMakeFiles/qsa_registry.dir/qsa/registry/catalog.cpp.o" "gcc" "src/CMakeFiles/qsa_registry.dir/qsa/registry/catalog.cpp.o.d"
  "/root/repo/src/qsa/registry/directory.cpp" "src/CMakeFiles/qsa_registry.dir/qsa/registry/directory.cpp.o" "gcc" "src/CMakeFiles/qsa_registry.dir/qsa/registry/directory.cpp.o.d"
  "/root/repo/src/qsa/registry/placement.cpp" "src/CMakeFiles/qsa_registry.dir/qsa/registry/placement.cpp.o" "gcc" "src/CMakeFiles/qsa_registry.dir/qsa/registry/placement.cpp.o.d"
  "/root/repo/src/qsa/registry/service.cpp" "src/CMakeFiles/qsa_registry.dir/qsa/registry/service.cpp.o" "gcc" "src/CMakeFiles/qsa_registry.dir/qsa/registry/service.cpp.o.d"
  "/root/repo/src/qsa/registry/spec.cpp" "src/CMakeFiles/qsa_registry.dir/qsa/registry/spec.cpp.o" "gcc" "src/CMakeFiles/qsa_registry.dir/qsa/registry/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qsa_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
