# Empty dependencies file for qsa_registry.
# This may be replaced when dependencies are built.
