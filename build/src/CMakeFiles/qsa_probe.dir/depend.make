# Empty dependencies file for qsa_probe.
# This may be replaced when dependencies are built.
