file(REMOVE_RECURSE
  "CMakeFiles/qsa_probe.dir/qsa/probe/neighbor_table.cpp.o"
  "CMakeFiles/qsa_probe.dir/qsa/probe/neighbor_table.cpp.o.d"
  "CMakeFiles/qsa_probe.dir/qsa/probe/resolution.cpp.o"
  "CMakeFiles/qsa_probe.dir/qsa/probe/resolution.cpp.o.d"
  "CMakeFiles/qsa_probe.dir/qsa/probe/snapshot.cpp.o"
  "CMakeFiles/qsa_probe.dir/qsa/probe/snapshot.cpp.o.d"
  "libqsa_probe.a"
  "libqsa_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsa_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
