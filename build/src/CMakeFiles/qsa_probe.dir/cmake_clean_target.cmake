file(REMOVE_RECURSE
  "libqsa_probe.a"
)
