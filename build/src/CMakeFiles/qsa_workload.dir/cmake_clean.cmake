file(REMOVE_RECURSE
  "CMakeFiles/qsa_workload.dir/qsa/workload/apps.cpp.o"
  "CMakeFiles/qsa_workload.dir/qsa/workload/apps.cpp.o.d"
  "CMakeFiles/qsa_workload.dir/qsa/workload/churn.cpp.o"
  "CMakeFiles/qsa_workload.dir/qsa/workload/churn.cpp.o.d"
  "CMakeFiles/qsa_workload.dir/qsa/workload/generator.cpp.o"
  "CMakeFiles/qsa_workload.dir/qsa/workload/generator.cpp.o.d"
  "libqsa_workload.a"
  "libqsa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
