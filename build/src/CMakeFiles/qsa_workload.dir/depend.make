# Empty dependencies file for qsa_workload.
# This may be replaced when dependencies are built.
