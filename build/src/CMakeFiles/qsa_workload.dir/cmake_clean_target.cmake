file(REMOVE_RECURSE
  "libqsa_workload.a"
)
