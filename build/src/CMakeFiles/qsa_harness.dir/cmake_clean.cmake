file(REMOVE_RECURSE
  "CMakeFiles/qsa_harness.dir/qsa/harness/config.cpp.o"
  "CMakeFiles/qsa_harness.dir/qsa/harness/config.cpp.o.d"
  "CMakeFiles/qsa_harness.dir/qsa/harness/experiment.cpp.o"
  "CMakeFiles/qsa_harness.dir/qsa/harness/experiment.cpp.o.d"
  "CMakeFiles/qsa_harness.dir/qsa/harness/grid.cpp.o"
  "CMakeFiles/qsa_harness.dir/qsa/harness/grid.cpp.o.d"
  "libqsa_harness.a"
  "libqsa_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsa_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
