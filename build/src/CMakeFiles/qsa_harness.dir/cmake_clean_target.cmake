file(REMOVE_RECURSE
  "libqsa_harness.a"
)
