# Empty compiler generated dependencies file for qsa_harness.
# This may be replaced when dependencies are built.
