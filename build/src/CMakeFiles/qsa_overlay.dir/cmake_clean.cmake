file(REMOVE_RECURSE
  "CMakeFiles/qsa_overlay.dir/qsa/overlay/can_overlay.cpp.o"
  "CMakeFiles/qsa_overlay.dir/qsa/overlay/can_overlay.cpp.o.d"
  "CMakeFiles/qsa_overlay.dir/qsa/overlay/chord_id.cpp.o"
  "CMakeFiles/qsa_overlay.dir/qsa/overlay/chord_id.cpp.o.d"
  "CMakeFiles/qsa_overlay.dir/qsa/overlay/chord_ring.cpp.o"
  "CMakeFiles/qsa_overlay.dir/qsa/overlay/chord_ring.cpp.o.d"
  "CMakeFiles/qsa_overlay.dir/qsa/overlay/pastry_overlay.cpp.o"
  "CMakeFiles/qsa_overlay.dir/qsa/overlay/pastry_overlay.cpp.o.d"
  "libqsa_overlay.a"
  "libqsa_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsa_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
