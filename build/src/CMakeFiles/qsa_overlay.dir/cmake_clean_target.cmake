file(REMOVE_RECURSE
  "libqsa_overlay.a"
)
