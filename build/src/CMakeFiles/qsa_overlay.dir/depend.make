# Empty dependencies file for qsa_overlay.
# This may be replaced when dependencies are built.
