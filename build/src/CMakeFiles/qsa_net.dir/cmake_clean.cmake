file(REMOVE_RECURSE
  "CMakeFiles/qsa_net.dir/qsa/net/network.cpp.o"
  "CMakeFiles/qsa_net.dir/qsa/net/network.cpp.o.d"
  "CMakeFiles/qsa_net.dir/qsa/net/peer.cpp.o"
  "CMakeFiles/qsa_net.dir/qsa/net/peer.cpp.o.d"
  "CMakeFiles/qsa_net.dir/qsa/net/reservations.cpp.o"
  "CMakeFiles/qsa_net.dir/qsa/net/reservations.cpp.o.d"
  "libqsa_net.a"
  "libqsa_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsa_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
