file(REMOVE_RECURSE
  "libqsa_net.a"
)
