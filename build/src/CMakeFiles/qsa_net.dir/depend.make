# Empty dependencies file for qsa_net.
# This may be replaced when dependencies are built.
