file(REMOVE_RECURSE
  "libqsa_sim.a"
)
