# Empty dependencies file for qsa_sim.
# This may be replaced when dependencies are built.
