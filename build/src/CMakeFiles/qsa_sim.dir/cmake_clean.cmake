file(REMOVE_RECURSE
  "CMakeFiles/qsa_sim.dir/qsa/sim/event_queue.cpp.o"
  "CMakeFiles/qsa_sim.dir/qsa/sim/event_queue.cpp.o.d"
  "CMakeFiles/qsa_sim.dir/qsa/sim/simulator.cpp.o"
  "CMakeFiles/qsa_sim.dir/qsa/sim/simulator.cpp.o.d"
  "libqsa_sim.a"
  "libqsa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
