# Empty compiler generated dependencies file for qsa_sim.
# This may be replaced when dependencies are built.
