file(REMOVE_RECURSE
  "CMakeFiles/qsa_session.dir/qsa/session/manager.cpp.o"
  "CMakeFiles/qsa_session.dir/qsa/session/manager.cpp.o.d"
  "CMakeFiles/qsa_session.dir/qsa/session/session.cpp.o"
  "CMakeFiles/qsa_session.dir/qsa/session/session.cpp.o.d"
  "libqsa_session.a"
  "libqsa_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsa_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
