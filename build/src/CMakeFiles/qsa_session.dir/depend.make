# Empty dependencies file for qsa_session.
# This may be replaced when dependencies are built.
