file(REMOVE_RECURSE
  "libqsa_session.a"
)
