# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/qos_value_test[1]_include.cmake")
include("/root/repo/build/tests/qos_satisfy_test[1]_include.cmake")
include("/root/repo/build/tests/qos_resources_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/overlay_test[1]_include.cmake")
include("/root/repo/build/tests/can_test[1]_include.cmake")
include("/root/repo/build/tests/pastry_test[1]_include.cmake")
include("/root/repo/build/tests/lookup_conformance_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/spec_test[1]_include.cmake")
include("/root/repo/build/tests/probe_test[1]_include.cmake")
include("/root/repo/build/tests/compose_test[1]_include.cmake")
include("/root/repo/build/tests/select_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/reference_model_test[1]_include.cmake")
