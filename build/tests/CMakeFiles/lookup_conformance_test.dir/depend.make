# Empty dependencies file for lookup_conformance_test.
# This may be replaced when dependencies are built.
