file(REMOVE_RECURSE
  "CMakeFiles/lookup_conformance_test.dir/lookup_conformance_test.cpp.o"
  "CMakeFiles/lookup_conformance_test.dir/lookup_conformance_test.cpp.o.d"
  "lookup_conformance_test"
  "lookup_conformance_test.pdb"
  "lookup_conformance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookup_conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
