file(REMOVE_RECURSE
  "CMakeFiles/qos_satisfy_test.dir/qos_satisfy_test.cpp.o"
  "CMakeFiles/qos_satisfy_test.dir/qos_satisfy_test.cpp.o.d"
  "qos_satisfy_test"
  "qos_satisfy_test.pdb"
  "qos_satisfy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_satisfy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
