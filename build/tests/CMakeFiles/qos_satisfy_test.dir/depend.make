# Empty dependencies file for qos_satisfy_test.
# This may be replaced when dependencies are built.
