file(REMOVE_RECURSE
  "CMakeFiles/qos_resources_test.dir/qos_resources_test.cpp.o"
  "CMakeFiles/qos_resources_test.dir/qos_resources_test.cpp.o.d"
  "qos_resources_test"
  "qos_resources_test.pdb"
  "qos_resources_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_resources_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
