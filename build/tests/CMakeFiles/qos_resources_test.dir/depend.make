# Empty dependencies file for qos_resources_test.
# This may be replaced when dependencies are built.
