file(REMOVE_RECURSE
  "CMakeFiles/qos_value_test.dir/qos_value_test.cpp.o"
  "CMakeFiles/qos_value_test.dir/qos_value_test.cpp.o.d"
  "qos_value_test"
  "qos_value_test.pdb"
  "qos_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
