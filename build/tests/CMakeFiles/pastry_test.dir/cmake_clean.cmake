file(REMOVE_RECURSE
  "CMakeFiles/pastry_test.dir/pastry_test.cpp.o"
  "CMakeFiles/pastry_test.dir/pastry_test.cpp.o.d"
  "pastry_test"
  "pastry_test.pdb"
  "pastry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pastry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
