
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/reference_model_test.cpp" "tests/CMakeFiles/reference_model_test.dir/reference_model_test.cpp.o" "gcc" "tests/CMakeFiles/reference_model_test.dir/reference_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qsa_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_session.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qsa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
